#ifndef NOMAD_UTIL_FLAGS_H_
#define NOMAD_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace nomad {

/// Minimal command-line flag parser for the bench/example binaries.
/// Accepts `--name=value` and `--name value`; bare `--name` sets "true".
///
/// Usage:
///   Flags flags;
///   NOMAD_CHECK(flags.Parse(argc, argv).ok());
///   int cores = flags.GetInt("cores", 4);
class Flags {
 public:
  /// Parses argv; returns InvalidArgument on malformed input. Positional
  /// (non flag) arguments are collected in positional().
  Status Parse(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace nomad

#endif  // NOMAD_UTIL_FLAGS_H_
