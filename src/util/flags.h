#ifndef NOMAD_UTIL_FLAGS_H_
#define NOMAD_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace nomad {

/// Minimal command-line flag parser for the CLI and bench binaries.
/// Accepts `--name=value` and `--name value`; bare `--name` sets "true".
///
/// A present-but-malformed value is an operator error, not a preference:
/// the typed getters fatally abort with a diagnostic instead of silently
/// returning the default (`--epochs=garbage` used to train with defaults
/// and no message). Typos in flag *names* are caught by ExpectKnown().
///
/// Usage:
///   Flags flags;
///   NOMAD_CHECK(flags.Parse(argc, argv).ok());
///   int cores = flags.GetInt("cores", 4);
class Flags {
 public:
  /// Parses argv; returns InvalidArgument on malformed input. Positional
  /// (non flag) arguments are collected in positional().
  Status Parse(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;
  /// Returns the parsed value, or `def` when the flag is absent. A value
  /// that fails to parse as a base-10 integer aborts with a diagnostic.
  int64_t GetInt(const std::string& name, int64_t def) const;
  /// Double analogue of GetInt; malformed values abort.
  double GetDouble(const std::string& name, double def) const;
  /// Accepts true/1/yes/on and false/0/no/off (bare `--name` parses as
  /// "true"); any other value aborts.
  bool GetBool(const std::string& name, bool def) const;

  /// Rejects unknown `--` flags: returns InvalidArgument naming every
  /// parsed flag not in `known` (typos like `--metrics-prot` used to be
  /// silently ignored). Positional arguments are not affected. CLIs call
  /// this right after Parse with their per-command flag list.
  Status ExpectKnown(const std::vector<std::string>& known) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace nomad

#endif  // NOMAD_UTIL_FLAGS_H_
