#include "util/rng.h"

#include <algorithm>

#include "util/logging.h"

namespace nomad {

ZipfSampler::ZipfSampler(int n, double s) : n_(n) {
  NOMAD_CHECK_GT(n, 0);
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int i = 1; i <= n; ++i) {
    total += std::pow(static_cast<double>(i), -s);
    cdf_[static_cast<size_t>(i - 1)] = total;
  }
  for (auto& c : cdf_) c /= total;
}

int ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin()) + 1;
}

}  // namespace nomad
