#ifndef NOMAD_UTIL_THREAD_POOL_H_
#define NOMAD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nomad {

/// Fixed-size worker pool used by the data-parallel baselines (ALS, CCD++),
/// by ParallelFor, and for parallel trace-point evaluation. The NOMAD
/// solver manages its own long-lived worker threads and does not use this
/// pool for training.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);

  /// As above, but thread i is additionally pinned to the CPU set
  /// `cpus_per_thread[i % cpus_per_thread.size()]` (empty sets, an empty
  /// vector, or a failed pin leave that thread unpinned — pinning is an
  /// optimization, never a requirement). The NOMAD driver uses this to give
  /// its evaluation pool the same NUMA placement as the training workers.
  ThreadPool(int num_threads,
             const std::vector<std::vector<int>>& cpus_per_thread);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  int pending_ = 0;  // queued + running tasks
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [begin, end) across `pool`'s threads, splitting the
/// range into contiguous chunks (one per thread). Blocks until done.
/// If pool is null or single-threaded the loop runs inline.
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn);

/// Runs fn(shard, begin, end) once per shard with the range split evenly.
/// Useful when per-thread scratch state is needed.
void ParallelForShards(ThreadPool* pool, int64_t begin, int64_t end,
                       const std::function<void(int, int64_t, int64_t)>& fn);

}  // namespace nomad

#endif  // NOMAD_UTIL_THREAD_POOL_H_
