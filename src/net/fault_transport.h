#ifndef NOMAD_NET_FAULT_TRANSPORT_H_
#define NOMAD_NET_FAULT_TRANSPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "net/transport.h"

namespace nomad {
namespace net {

/// A deterministic, seeded schedule of injected faults for one rank's
/// transport endpoint. All probabilities are per-frame and drawn from one
/// seeded stream, so a given (plan, call sequence) always injects the same
/// faults — recovery paths become reproducible in-process CI tests instead
/// of flaky network lore.
struct FaultPlan {
  uint64_t seed = 1;  ///< Seed of the fault decision stream.

  /// Probability that a Send() is dropped: the frame is discarded and the
  /// caller sees StatusCode::kUnavailable — the transport-level shape of a
  /// transient EPIPE/ECONNRESET, which retry/backoff should absorb.
  double drop_rate = 0.0;
  /// Probability that a token frame is delivered twice. Applied to kToken
  /// frames only: the solver discards replayed tokens by their hop
  /// version, while duplicating barrier control traffic would violate the
  /// protocol's at-most-once bookkeeping (real transports are TCP-backed
  /// and never duplicate).
  double duplicate_rate = 0.0;
  /// Probability that a token frame is held back and released only after
  /// `delay_ops` further transport calls — an out-of-order delivery the
  /// solver must tolerate via its version counters. kToken frames only.
  double delay_rate = 0.0;
  /// How many later Send()/TryReceive() calls release a delayed frame.
  int delay_ops = 32;

  /// Rank death by send count: after this many accepted Send() calls the
  /// endpoint goes dead (< 0 disables). The trigger count is deterministic
  /// even though wall-clock is not.
  int64_t kill_after_sends = -1;
  /// Rank death by wall-clock: the endpoint goes dead once this many
  /// seconds elapsed since construction (< 0 disables). Checked on every
  /// transport call, so even an idle rank dies on time.
  double kill_after_seconds = -1.0;
  /// Rank death at a protocol point: die immediately after sending the
  /// `kill_on_kind_count`-th control frame of this ControlKind value
  /// (0 disables). E.g. kind 3 (kTraceSync), count 1 kills the rank in the
  /// middle of its first trace barrier — between kBarrierEnter and
  /// kResume.
  int kill_on_kind = 0;
  int kill_on_kind_count = 1;  ///< Which occurrence of kill_on_kind fires.

  /// Which rank this plan applies to (harness-level: ApplyFaultPlan and
  /// the CLI wrap only this rank's endpoint; < 0 = every rank, which only
  /// makes sense for kill-free plans).
  int target_rank = -1;

  /// True when any kill trigger is armed — such a plan needs heartbeats
  /// enabled, or the survivors will never detect the death.
  bool kills() const {
    return kill_after_sends >= 0 || kill_after_seconds >= 0.0 ||
           kill_on_kind != 0;
  }
};

/// Parses a comma-separated "key=value" fault-plan spec, e.g.
/// "seed=7,drop=0.05,dup=0.01,rank=2,kill-after-seconds=1.5" or
/// "rank=1,kill-on-kind=3". Keys: seed, drop, dup, delay, delay-ops,
/// kill-after-sends, kill-after-seconds, kill-on-kind, kill-on-count,
/// rank. Unknown keys and out-of-range rates are InvalidArgument.
Result<FaultPlan> ParseFaultPlan(const std::string& spec);

/// Decorates a Transport with the deterministic fault schedule of `plan`.
///
/// Semantics:
///  - Dropped frames are never delivered and the Send() reports
///    kUnavailable, so no frame is ever lost silently (there is no e2e ack
///    protocol to recover a silently-vanished frame; a visible failed send
///    is the honest injectable fault).
///  - A killed endpoint simulates process death: the base transport is
///    Close()d, every later Send() returns kUnavailable, TryReceive()
///    returns nothing, and — because the dead rank stops pumping — its
///    heartbeats cease, so peers' peer_status() turns kDead within the
///    heartbeat timeout.
///  - peer_status() forwards to the base transport until the endpoint is
///    killed, after which every peer reads kDead — the killed rank is cut
///    off from the world, so its driver errors out instead of hanging.
///  - stats()/rank()/world() forward to the base transport.
class FaultInjectingTransport final : public Transport {
 public:
  /// Takes ownership of `base`; the plan applies to this endpoint
  /// regardless of plan.target_rank (the caller picks the target).
  FaultInjectingTransport(std::unique_ptr<Transport> base, FaultPlan plan);
  ~FaultInjectingTransport() override;

  int rank() const override;   ///< Forwards to the base transport.
  int world() const override;  ///< Forwards to the base transport.

  /// Forwards to the base transport after rolling the fault dice: the
  /// frame may be dropped (kUnavailable), duplicated, or delayed per the
  /// plan, and an armed kill trigger may fire (after forwarding the
  /// triggering frame — death is observed by the *next* operation).
  Status Send(int dest, std::vector<uint8_t> frame) override;

  /// Forwards to the base transport; a killed endpoint receives nothing.
  /// Also one of the "later transport calls" that release delayed frames.
  bool TryReceive(std::vector<uint8_t>* frame, int* src) override;

  TransportStats stats() const override;  ///< Forwards to the base.

  /// Forwards to the base transport until the endpoint is killed, after
  /// which every peer reads kDead (see the class comment).
  PeerStatus peer_status(int peer) const override;

  Status Close() override;  ///< Closes the base transport.

  /// True once a kill trigger fired (for tests and the bench harness).
  bool killed() const;

  /// The plan this endpoint was constructed with.
  const FaultPlan& plan() const;

  /// Counters of the faults injected so far (thread-safe snapshot).
  struct FaultStats {
    int64_t drops = 0;       ///< Sends failed with injected kUnavailable.
    int64_t duplicates = 0;  ///< Token frames delivered twice.
    int64_t delays = 0;      ///< Token frames held back and re-ordered.
  };
  /// Snapshot of the counters above.
  FaultStats fault_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Wraps the endpoints `plan` targets (plan.target_rank, or every rank
/// when < 0) in FaultInjectingTransport decorators, in place. The helper
/// for loopback worlds: `ApplyFaultPlan(&endpoints, plan)` after
/// MakeLoopbackFabric().
void ApplyFaultPlan(std::vector<std::unique_ptr<Transport>>* endpoints,
                    const FaultPlan& plan);

}  // namespace net
}  // namespace nomad

#endif  // NOMAD_NET_FAULT_TRANSPORT_H_
