#ifndef NOMAD_NET_TRANSPORT_H_
#define NOMAD_NET_TRANSPORT_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace nomad {
namespace net {

/// Byte/message counters of one transport endpoint. All counters are
/// cumulative since construction and include both token and control
/// frames; bytes count encoded payloads (the TCP backend's 4-byte length
/// prefixes are included in the byte totals, since that is what crosses
/// the wire).
struct TransportStats {
  int64_t messages_sent = 0;      ///< Frames accepted by Send().
  int64_t messages_received = 0;  ///< Frames handed out by TryReceive().
  int64_t bytes_sent = 0;         ///< Encoded bytes out (framing included).
  int64_t bytes_received = 0;     ///< Encoded bytes in (framing included).
};

/// Liveness verdict for one peer, as seen by this endpoint. Backends
/// without heartbeats (the default) report every peer kAlive; with
/// heartbeats enabled a peer turns kDead once nothing — beacon or data —
/// has been heard from it for the configured timeout, or (TCP) once its
/// connection is gone. The verdict is computed, not latched: callers that
/// need a permanent death declaration (the distributed solver) latch it
/// themselves.
enum class PeerStatus {
  kAlive = 0,  ///< Heard from recently (or liveness tracking is off).
  kDead = 1,   ///< Heartbeat timeout expired or the connection is lost.
};

/// Liveness-detection knobs shared by the transport backends. Disabled by
/// default: interval_seconds <= 0 means no beacons are sent and
/// peer_status() never reports kDead from silence alone.
struct HeartbeatOptions {
  /// How often this endpoint emits a kHeartbeat control frame to every
  /// peer. <= 0 disables liveness tracking entirely.
  double interval_seconds = 0.0;
  /// Silence longer than this declares a peer dead. Should be several
  /// intervals so one delayed beacon does not kill a healthy peer; <= 0
  /// picks 4 x interval.
  double timeout_seconds = 0.0;

  /// True when liveness tracking is on.
  bool enabled() const { return interval_seconds > 0.0; }
  /// The effective timeout (the explicit one, or 4 x interval).
  double effective_timeout() const {
    return timeout_seconds > 0.0 ? timeout_seconds : 4.0 * interval_seconds;
  }
};

/// Point-to-point message transport between `world` ranks — the seam that
/// lets the distributed NOMAD solver run unchanged over threads
/// (LoopbackTransport) or processes/machines (TcpTransport).
///
/// Contract, shared by every backend:
///  - Frames are opaque byte payloads (encoded by net/wire_format.h) and
///    are delivered reliably, without duplication, and in FIFO order *per
///    (sender, receiver) pair*. No ordering holds across senders.
///  - Send() is thread-safe and non-blocking: it queues the frame and
///    returns; delivery happens asynchronously (immediately for loopback,
///    via the communicator thread for TCP).
///  - TryReceive() is non-blocking and must only be called from one thread
///    at a time (the solver's driver thread); it returns frames from all
///    peers merged into one stream, tagged with the source rank.
class Transport {
 public:
  virtual ~Transport() = default;  ///< Backends are owned via unique_ptr.

  /// This endpoint's rank in [0, world()).
  virtual int rank() const = 0;

  /// Number of ranks in the job (>= 1).
  virtual int world() const = 0;

  /// Queues one encoded frame for delivery to `dest` (which must not be
  /// this rank). Returns InvalidArgument for a bad destination,
  /// FailedPrecondition after Close(), and Unavailable when the peer is
  /// unreachable (dead connection, fault-injected drop) — an Unavailable
  /// send may be retried; the frame it carried was not delivered.
  virtual Status Send(int dest, std::vector<uint8_t> frame) = 0;

  /// Pops the oldest pending inbound frame into `*frame` (and its sender
  /// into `*src`); returns false when nothing is pending.
  virtual bool TryReceive(std::vector<uint8_t>* frame, int* src) = 0;

  /// Snapshot of this endpoint's traffic counters (thread-safe).
  virtual TransportStats stats() const = 0;

  /// Liveness verdict for `peer` (thread-safe; this rank itself is always
  /// kAlive). The default implementation reports every peer kAlive —
  /// backends opt into real detection via HeartbeatOptions.
  virtual PeerStatus peer_status(int peer) const {
    (void)peer;
    return PeerStatus::kAlive;
  }

  /// Flushes queued sends (TCP: drains the per-peer send queues onto the
  /// sockets) and tears the endpoint down; Send() fails afterwards while
  /// TryReceive() keeps serving frames that already arrived. Idempotent.
  virtual Status Close() = 0;

  /// Sends a copy of `frame` to every rank except this one; stops at the
  /// first error. A world-of-one broadcast is a no-op.
  Status Broadcast(const std::vector<uint8_t>& frame);
};

}  // namespace net
}  // namespace nomad

#endif  // NOMAD_NET_TRANSPORT_H_
