#ifndef NOMAD_NET_TCP_TRANSPORT_H_
#define NOMAD_NET_TCP_TRANSPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "net/transport.h"

namespace nomad {
namespace net {

/// Address of one rank in a TCP job: where its listener accepts peers.
struct TcpPeer {
  std::string host = "127.0.0.1";  ///< Hostname or dotted IPv4 address.
  int port = 0;                    ///< Listening port (0 = ephemeral, only
                                   ///< meaningful for the local rank).
};

/// Parses "host:port" into a TcpPeer; a bare "port" means 127.0.0.1.
/// Port 0 is accepted and means "listens ephemeral, never dialed" —
/// valid for any rank that only receives connections (in the mesh, every
/// rank above the dialer; see Establish()).
Result<TcpPeer> ParseTcpPeer(const std::string& spec);

/// Tuning knobs for a TCP endpoint.
struct TcpOptions {
  /// How long Establish() keeps retrying connects/accepts before giving up
  /// — ranks of one job start at different times.
  double connect_timeout_seconds = 20.0;
  /// Hard ceiling on one frame's payload; an inbound length prefix above
  /// this kills the connection instead of allocating unbounded memory.
  size_t max_frame_bytes = static_cast<size_t>(1) << 22;
  /// Latent dimensionality advertised in the handshake hello; peers with
  /// differing nonzero values refuse to connect. 0 = don't check.
  int hello_k = 0;
  /// True to advertise f32 factor payloads in the handshake hello.
  bool hello_f32 = false;
  /// Wire-codec spec byte (WireCodecSpec::ToByte(), net/codec.h) advertised
  /// in the handshake hello; peers with a different byte refuse to connect.
  /// The transport itself never codes frames — the byte only guarantees
  /// both ends stacked the same CodecTransport, like k and precision.
  uint8_t hello_codec = 0;
  /// Liveness detection (off by default). When enabled, the communicator
  /// thread emits kHeartbeat control beacons every interval, swallows
  /// inbound ones, and peer_status() reports a peer kDead after the
  /// timeout of silence — in addition to the always-on connection-loss
  /// detection.
  HeartbeatOptions heartbeat;
};

/// Transport between processes (or machines) over nonblocking TCP sockets.
///
/// Topology: full mesh, one socket per unordered rank pair, both directions
/// multiplexed over it. Rank i initiates the connections to all j < i and
/// accepts from all j > i; a handshake hello (net/wire_format.h) identifies
/// and validates each peer before any frame moves.
///
/// Framing: every payload crosses the wire as [u32 length][payload bytes].
/// A communicator thread owns all sockets after Establish(): it drains the
/// per-peer send queues Send() fills (woken through a pipe, so an idle
/// endpoint burns no CPU) and reassembles inbound frames into the receive
/// queue TryReceive() pops. Send() never blocks on the network.
///
/// Lifecycle: Listen() binds the local listener (port 0 picks an ephemeral
/// port, see listen_port()); Establish() blocks until the full mesh is
/// connected; Close() flushes queued sends and disconnects. The destructor
/// calls Close().
class TcpTransport final : public Transport {
 public:
  /// Binds and listens on `port` for rank `rank` of `world`. No peer
  /// connections are made yet — call Establish() next. Returns IOError
  /// when the port cannot be bound.
  static Result<std::unique_ptr<TcpTransport>> Listen(
      int rank, int world, int port, TcpOptions options = TcpOptions());

  /// Closes the endpoint (flushing pending sends) if still open.
  ~TcpTransport() override;

  /// The locally bound listening port (the requested one, or the
  /// kernel-assigned port when Listen() was given 0).
  int listen_port() const;

  /// Connects the full mesh: `peers[r]` is where rank r listens
  /// (peers[rank()] is ignored — this endpoint is already bound). Blocks
  /// until every peer is connected and validated or the connect timeout
  /// expires; starts the communicator thread on success.
  Status Establish(const std::vector<TcpPeer>& peers);

  int rank() const override;   ///< This endpoint's rank.
  int world() const override;  ///< Ranks in the job.

  /// Queues one frame for `dest`; the communicator thread writes it out.
  Status Send(int dest, std::vector<uint8_t> frame) override;

  /// Pops the oldest fully-reassembled inbound frame, if any.
  bool TryReceive(std::vector<uint8_t>* frame, int* src) override;

  /// Traffic counters; bytes include the 4-byte length prefixes.
  TransportStats stats() const override;

  /// kDead once the peer's connection is gone (socket error, EOF, its
  /// Close()) or — with heartbeats enabled — after the heartbeat timeout
  /// of silence. Always kAlive before Establish() and for this rank.
  PeerStatus peer_status(int peer) const override;

  /// Flushes pending sends onto the sockets (bounded by the connect
  /// timeout), stops the communicator thread, and closes all sockets.
  Status Close() override;

 private:
  struct Impl;
  explicit TcpTransport(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace nomad

#endif  // NOMAD_NET_TCP_TRANSPORT_H_
