#include "net/codec.h"

#include <cstring>

#include "util/logging.h"

namespace nomad {
namespace net {

namespace {

// Fixed header of a kBatch bundle: [type u8][reserved u8][count u16].
constexpr size_t kBatchHeaderBytes = 4;

// Delta payload prefix after the 16-byte factor header:
// [base_version u32][nchanged u16], then ceil(k/8) mask bytes and the
// changed entries in wire precision.
constexpr size_t kDeltaPrefixBytes = 4 + 2;

template <typename T>
void Append(std::vector<uint8_t>* out, T value) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

template <typename T>
T ReadAt(const uint8_t* data, size_t offset) {
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  return value;
}

// Writes the 16-byte factor-row header (same layout as EncodeFactorRow,
// but allowed to tag wire-only precisions and the delta flag).
void AppendFactorHeader(std::vector<uint8_t>* out, uint8_t type,
                        WirePrecision precision, int k, int32_t id,
                        uint32_t version, uint32_t flags) {
  Append<uint8_t>(out, type);
  Append<uint8_t>(out, static_cast<uint8_t>(precision));
  Append<uint16_t>(out, static_cast<uint16_t>(k));
  Append<int32_t>(out, id);
  Append<uint32_t>(out, version);
  Append<uint32_t>(out, flags);
}

bool IsLeaseSyncControl(const std::vector<uint8_t>& frame) {
  return frame.size() >= 2 &&
         frame[0] == static_cast<uint8_t>(MsgType::kControl) &&
         frame[1] == static_cast<uint8_t>(ControlKind::kLeaseSync);
}

}  // namespace

uint16_t Bf16FromF32(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  if ((bits & 0x7F800000u) == 0x7F800000u && (bits & 0x007FFFFFu) != 0) {
    // NaN: truncate the mantissa but force a bit so it stays a NaN.
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest even on the 16 dropped bits; the carry propagates
  // into the exponent, so overflow saturates to infinity correctly.
  bits += 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>(bits >> 16);
}

float F32FromBf16(uint16_t bits) {
  const uint32_t wide = static_cast<uint32_t>(bits) << 16;
  float value;
  std::memcpy(&value, &wide, sizeof(value));
  return value;
}

uint16_t F16FromF32(float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const uint16_t sign = static_cast<uint16_t>((bits >> 16) & 0x8000u);
  const uint32_t abs = bits & 0x7FFFFFFFu;
  if (abs >= 0x7F800000u) {  // infinity or NaN
    return static_cast<uint16_t>(
        sign | (abs > 0x7F800000u ? 0x7E00u : 0x7C00u));
  }
  if (abs >= 0x47800000u) {  // >= 2^16: beyond half range even after rounding
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (abs >= 0x38800000u) {  // normal half (>= 2^-14)
    const uint32_t exp = abs >> 23;          // biased-127, in [113, 142]
    const uint32_t mant = abs & 0x007FFFFFu;
    uint32_t half = ((exp - 112u) << 10) | (mant >> 13);
    const uint32_t dropped = mant & 0x1FFFu;  // 13 discarded mantissa bits
    if (dropped > 0x1000u || (dropped == 0x1000u && (half & 1u))) ++half;
    // A carry out of the max normal (65504) lands exactly on 0x7C00 = inf.
    return static_cast<uint16_t>(sign | half);
  }
  // Subnormal half: round value * 2^24 to the integer mantissa. The
  // implicit float mantissa bit sits at 2^23, so the mantissa shifts right
  // by 126 - exp ∈ [14, 24] (14 just under the smallest normal, 24 at the
  // smallest subnormal); anything smaller underflows to signed zero.
  const uint32_t exp = abs >> 23;
  const uint32_t shift = 126u - exp;
  if (exp == 0 || shift > 24u) return sign;  // underflows to signed zero
  const uint32_t mant24 = (abs & 0x007FFFFFu) | 0x00800000u;
  uint32_t half = mant24 >> shift;
  const uint32_t dropped = mant24 & ((1u << shift) - 1u);
  const uint32_t midpoint = 1u << (shift - 1);
  if (dropped > midpoint || (dropped == midpoint && (half & 1u))) ++half;
  // half can round up to 0x0400, which is exactly the smallest normal.
  return static_cast<uint16_t>(sign | half);
}

float F32FromF16(uint16_t bits) {
  const uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
  const uint32_t exp = (bits >> 10) & 0x1Fu;
  const uint32_t mant = bits & 0x3FFu;
  uint32_t wide;
  if (exp == 0x1Fu) {  // infinity or NaN
    wide = sign | 0x7F800000u | (mant << 13);
  } else if (exp == 0) {
    if (mant == 0) {
      wide = sign;  // signed zero
    } else {
      // Subnormal: mant * 2^-24, renormalized into the float format.
      uint32_t m = mant;
      uint32_t e = 113;  // biased-127 exponent of 2^-14
      while ((m & 0x400u) == 0) {
        m <<= 1;
        --e;
      }
      wide = sign | (e << 23) | ((m & 0x3FFu) << 13);
    }
  } else {
    wide = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  float value;
  std::memcpy(&value, &wide, sizeof(value));
  return value;
}

uint8_t WireCodecSpec::ToByte() const {
  uint8_t byte = 0;
  if (bf16) byte |= 1u << 0;
  if (f16) byte |= 1u << 1;
  if (delta) byte |= 1u << 2;
  if (batch) byte |= 1u << 3;
  return byte;
}

Result<WireCodecSpec> WireCodecSpec::FromByte(uint8_t byte) {
  if ((byte & ~0x0Fu) != 0) {
    return Status::InvalidArgument("unknown wire-codec bits in byte " +
                                   std::to_string(static_cast<int>(byte)));
  }
  WireCodecSpec spec;
  spec.bf16 = (byte & (1u << 0)) != 0;
  spec.f16 = (byte & (1u << 1)) != 0;
  spec.delta = (byte & (1u << 2)) != 0;
  spec.batch = (byte & (1u << 3)) != 0;
  if (spec.bf16 && spec.f16) {
    return Status::InvalidArgument(
        "wire codec byte sets both bf16 and f16 quantization");
  }
  return spec;
}

Result<WireCodecSpec> WireCodecSpec::Parse(const std::string& text) {
  WireCodecSpec spec;
  if (text.empty() || text == "none") return spec;
  size_t at = 0;
  while (at <= text.size()) {
    const size_t plus = text.find('+', at);
    const std::string stage =
        text.substr(at, plus == std::string::npos ? plus : plus - at);
    bool* field = nullptr;
    if (stage == "bf16") {
      field = &spec.bf16;
    } else if (stage == "f16") {
      field = &spec.f16;
    } else if (stage == "delta") {
      field = &spec.delta;
    } else if (stage == "batch") {
      field = &spec.batch;
    } else {
      return Status::InvalidArgument(
          "unknown wire-codec stage \"" + stage +
          "\" (expected none, or +-joined bf16|f16|delta|batch)");
    }
    if (*field) {
      return Status::InvalidArgument("wire-codec stage \"" + stage +
                                     "\" given twice");
    }
    *field = true;
    if (plus == std::string::npos) break;
    at = plus + 1;
  }
  if (spec.bf16 && spec.f16) {
    return Status::InvalidArgument(
        "bf16 and f16 quantization are mutually exclusive");
  }
  return spec;
}

std::string WireCodecSpec::ToString() const {
  if (!enabled()) return "none";
  std::string out;
  const auto add = [&out](const char* stage) {
    if (!out.empty()) out += '+';
    out += stage;
  };
  if (bf16) add("bf16");
  if (f16) add("f16");
  if (delta) add("delta");
  if (batch) add("batch");
  return out;
}

void EncodeBatch(const std::vector<std::vector<uint8_t>>& frames,
                 std::vector<uint8_t>* out) {
  NOMAD_CHECK(!frames.empty() && frames.size() <= 0xFFFF)
      << "batch of " << frames.size() << " frames";
  out->clear();
  size_t total = kBatchHeaderBytes;
  for (const auto& frame : frames) total += 4 + frame.size();
  out->reserve(total);
  Append<uint8_t>(out, static_cast<uint8_t>(MsgType::kBatch));
  Append<uint8_t>(out, 0);
  Append<uint16_t>(out, static_cast<uint16_t>(frames.size()));
  for (const auto& frame : frames) {
    NOMAD_CHECK(!frame.empty());
    Append<uint32_t>(out, static_cast<uint32_t>(frame.size()));
    const size_t at = out->size();
    out->resize(at + frame.size());
    std::memcpy(out->data() + at, frame.data(), frame.size());
  }
}

Result<std::vector<std::vector<uint8_t>>> DecodeBatch(const uint8_t* data,
                                                      size_t size) {
  if (size < kBatchHeaderBytes) {
    return Status::InvalidArgument("truncated batch frame: " +
                                   std::to_string(size) + " bytes");
  }
  if (data[0] != static_cast<uint8_t>(MsgType::kBatch)) {
    return Status::InvalidArgument("not a batch frame (type byte " +
                                   std::to_string(static_cast<int>(data[0])) +
                                   ")");
  }
  if (data[1] != 0) {
    return Status::InvalidArgument("batch frame reserved byte is non-zero");
  }
  const uint16_t count = ReadAt<uint16_t>(data, 2);
  if (count == 0) {
    return Status::InvalidArgument("batch frame carries zero sub-frames");
  }
  std::vector<std::vector<uint8_t>> frames;
  frames.reserve(count);
  size_t at = kBatchHeaderBytes;
  for (uint16_t i = 0; i < count; ++i) {
    if (size - at < 4) {
      return Status::InvalidArgument("truncated batch frame: sub-frame " +
                                     std::to_string(i) + " length missing");
    }
    const uint32_t len = ReadAt<uint32_t>(data, at);
    at += 4;
    if (len == 0) {
      return Status::InvalidArgument("batch frame sub-frame " +
                                     std::to_string(i) + " is empty");
    }
    if (size - at < len) {
      return Status::InvalidArgument("truncated batch frame: sub-frame " +
                                     std::to_string(i) + " needs " +
                                     std::to_string(len) + " bytes");
    }
    frames.emplace_back(data + at, data + at + len);
    at += len;
  }
  if (at != size) {
    return Status::InvalidArgument(
        "oversized batch frame: " + std::to_string(size - at) +
        " trailing bytes after the last sub-frame");
  }
  return frames;
}

CodecTransport::CodecTransport(Transport* base, const CodecOptions& options)
    : base_(base),
      options_(options),
      native_entry_bytes_(WireEntryBytes(options.native)),
      wire_entry_bytes_(
          WireEntryBytes(options.spec.WireOf(options.native))) {
  NOMAD_CHECK(base_ != nullptr);
  NOMAD_CHECK(options_.native == WirePrecision::kF64 ||
              options_.native == WirePrecision::kF32)
      << "native precision must be a solver storage precision";
  NOMAD_CHECK(options_.batch_max_frames >= 1 &&
              options_.batch_max_frames <= 0xFFFF);
  const int world = base_->world();
  tx_.reserve(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) tx_.push_back(std::make_unique<PeerTx>());
  rx_.resize(static_cast<size_t>(world));
  if (options_.registry != nullptr) {
    const obs::Labels rl = {{"rank", std::to_string(options_.metrics_rank)}};
    m_raw_bytes_ =
        options_.registry->GetCounter("nomad_dist_codec_raw_bytes_total", rl);
    m_coded_bytes_ = options_.registry->GetCounter(
        "nomad_dist_codec_coded_bytes_total", rl);
    m_delta_hits_ =
        options_.registry->GetCounter("nomad_dist_codec_delta_hits_total", rl);
    m_delta_full_ =
        options_.registry->GetCounter("nomad_dist_codec_delta_full_total", rl);
    m_stale_rejects_ = options_.registry->GetCounter(
        "nomad_dist_codec_stale_rejects_total", rl);
    m_flushes_ =
        options_.registry->GetCounter("nomad_dist_codec_flushes_total", rl);
    m_split_flushes_ = options_.registry->GetCounter(
        "nomad_dist_codec_split_flushes_total", rl);
  }
}

CodecTransport::~CodecTransport() = default;

int CodecTransport::rank() const { return base_->rank(); }

int CodecTransport::world() const { return base_->world(); }

TransportStats CodecTransport::stats() const { return base_->stats(); }

PeerStatus CodecTransport::peer_status(int peer) const {
  return base_->peer_status(peer);
}

std::vector<uint8_t> CodecTransport::EncodeFactorForWire(
    PeerTx* tx, const std::vector<uint8_t>& frame, int32_t* cache_id,
    RowCache* cache_update) {
  *cache_id = -1;
  if (frame.size() < kFactorRowHeaderBytes) return frame;
  const uint8_t type = frame[0];
  const int k = ReadAt<uint16_t>(frame.data(), 2);
  const int32_t id = ReadAt<int32_t>(frame.data(), 4);
  const uint32_t version = ReadAt<uint32_t>(frame.data(), 8);
  const uint32_t flags = ReadAt<uint32_t>(frame.data(), 12);
  const size_t expected =
      kFactorRowHeaderBytes + static_cast<size_t>(k) * native_entry_bytes_;
  if (k < 1 || k > kMaxWireK || id < 0 || frame.size() != expected ||
      frame[1] != static_cast<uint8_t>(options_.native)) {
    // Not a frame this solver's encoder produced; leave it alone and let
    // the receiving end report the protocol violation.
    return frame;
  }

  // Stage 1: quantize the payload entries into wire precision.
  std::vector<uint8_t> entries;
  if (options_.spec.quantizes()) {
    entries.resize(static_cast<size_t>(k) * wire_entry_bytes_);
    const uint8_t* payload = frame.data() + kFactorRowHeaderBytes;
    for (int i = 0; i < k; ++i) {
      float value;
      if (options_.native == WirePrecision::kF32) {
        value = ReadAt<float>(payload, static_cast<size_t>(i) * 4);
      } else {
        value = static_cast<float>(
            ReadAt<double>(payload, static_cast<size_t>(i) * 8));
      }
      const uint16_t q =
          options_.spec.bf16 ? Bf16FromF32(value) : F16FromF32(value);
      std::memcpy(entries.data() + static_cast<size_t>(i) * 2, &q, 2);
    }
  } else {
    entries.assign(frame.begin() + kFactorRowHeaderBytes, frame.end());
  }
  const WirePrecision wire = options_.spec.WireOf(options_.native);

  // Stage 2: delta against the receiver's last-seen copy of this row.
  // Flagged frames (regrants) always go full — their semantics must not
  // depend on any cache the receiver may have lost.
  if (options_.spec.delta && flags == 0) {
    const auto it = tx->cache.find(id);
    if (it != tx->cache.end() &&
        it->second.entries.size() == entries.size()) {
      const size_t mask_bytes = static_cast<size_t>(k + 7) / 8;
      int changed = 0;
      for (int i = 0; i < k; ++i) {
        if (std::memcmp(entries.data() + static_cast<size_t>(i) *
                                             wire_entry_bytes_,
                        it->second.entries.data() +
                            static_cast<size_t>(i) * wire_entry_bytes_,
                        wire_entry_bytes_) != 0) {
          ++changed;
        }
      }
      const size_t delta_size =
          kFactorRowHeaderBytes + kDeltaPrefixBytes + mask_bytes +
          static_cast<size_t>(changed) * wire_entry_bytes_;
      const size_t full_size =
          kFactorRowHeaderBytes + static_cast<size_t>(k) * wire_entry_bytes_;
      if (delta_size < full_size) {
        std::vector<uint8_t> out;
        out.reserve(delta_size);
        AppendFactorHeader(&out, type, wire, k, id, version,
                           flags | kFactorRowFlagDelta);
        Append<uint32_t>(&out, it->second.version);
        Append<uint16_t>(&out, static_cast<uint16_t>(changed));
        const size_t mask_at = out.size();
        out.resize(mask_at + mask_bytes, 0);
        for (int i = 0; i < k; ++i) {
          if (std::memcmp(entries.data() + static_cast<size_t>(i) *
                                               wire_entry_bytes_,
                          it->second.entries.data() +
                              static_cast<size_t>(i) * wire_entry_bytes_,
                          wire_entry_bytes_) != 0) {
            out[mask_at + static_cast<size_t>(i) / 8] |=
                static_cast<uint8_t>(1u << (i % 8));
            const size_t at = out.size();
            out.resize(at + wire_entry_bytes_);
            std::memcpy(out.data() + at,
                        entries.data() +
                            static_cast<size_t>(i) * wire_entry_bytes_,
                        wire_entry_bytes_);
          }
        }
        delta_hits_.fetch_add(1, std::memory_order_relaxed);
        m_delta_hits_.Inc();
        *cache_id = id;
        cache_update->version = version;
        cache_update->entries = std::move(entries);
        return out;
      }
    }
    delta_full_.fetch_add(1, std::memory_order_relaxed);
    m_delta_full_.Inc();
  }

  std::vector<uint8_t> out;
  out.reserve(kFactorRowHeaderBytes + entries.size());
  AppendFactorHeader(&out, type, wire, k, id, version, flags);
  out.insert(out.end(), entries.begin(), entries.end());
  if (options_.spec.delta) {
    *cache_id = id;
    cache_update->version = version;
    cache_update->entries = std::move(entries);
  }
  return out;
}

Status CodecTransport::Send(int dest, std::vector<uint8_t> frame) {
  if (!options_.spec.enabled() || frame.empty() || dest < 0 ||
      dest >= world()) {
    return base_->Send(dest, std::move(frame));
  }
  const size_t raw_size = frame.size();
  const uint8_t type = frame[0];
  PeerTx& tx = *tx_[static_cast<size_t>(dest)];
  std::lock_guard<std::mutex> lock(tx.mu);

  int32_t cache_id = -1;
  RowCache cache_update;
  if (type == static_cast<uint8_t>(MsgType::kToken) ||
      type == static_cast<uint8_t>(MsgType::kHRow)) {
    frame = EncodeFactorForWire(&tx, frame, &cache_id, &cache_update);
  }

  if (options_.spec.batch && type == static_cast<uint8_t>(MsgType::kToken)) {
    // Buffered tokens are committed: FIFO order makes later deltas decode
    // against them, and a failed flush keeps them queued for retry — so
    // the cache advances at buffering time, not at flush time.
    tx.buffered_bytes += frame.size();
    tx.buffer.push_back(std::move(frame));
    if (cache_id >= 0) {
      tx.cache[cache_id] = std::move(cache_update);
    }
    raw_bytes_.fetch_add(static_cast<int64_t>(raw_size),
                         std::memory_order_relaxed);
    m_raw_bytes_.Inc(static_cast<int64_t>(raw_size));
    if (tx.buffer.size() >=
            static_cast<size_t>(options_.batch_max_frames) ||
        tx.buffered_bytes >= options_.batch_max_bytes) {
      // A threshold flush that fails leaves the tokens buffered; the
      // driver's per-step FlushAll retries until the peer heals or is
      // declared dead.
      (void)FlushLocked(dest, &tx);
    }
    return Status::OK();
  }

  // Any non-buffered frame must not overtake buffered tokens: flush first
  // so the per-pair FIFO contract survives coalescing.
  if (options_.spec.batch) {
    const Status flushed = FlushLocked(dest, &tx);
    if (!flushed.ok()) return flushed;
  }

  const bool lease_sync = IsLeaseSyncControl(frame);
  const size_t coded_size = frame.size();
  const Status sent = base_->Send(dest, std::move(frame));
  if (sent.ok()) {
    raw_bytes_.fetch_add(static_cast<int64_t>(raw_size),
                         std::memory_order_relaxed);
    m_raw_bytes_.Inc(static_cast<int64_t>(raw_size));
    coded_bytes_.fetch_add(static_cast<int64_t>(coded_size),
                           std::memory_order_relaxed);
    m_coded_bytes_.Inc(static_cast<int64_t>(coded_size));
    if (cache_id >= 0) tx.cache[cache_id] = std::move(cache_update);
    // The recovery protocol's channel-flush marker: everything after it on
    // this channel decodes against a fresh cache on the receiving end, so
    // the sending end starts over too (full rows until re-warmed).
    if (lease_sync) tx.cache.clear();
  }
  return sent;
}

Status CodecTransport::FlushLocked(int dest, PeerTx* tx) {
  if (tx->buffer.empty()) return Status::OK();
  int groups = 0;
  while (!tx->buffer.empty()) {
    // Greedy prefix of the buffer that fits one transport frame.
    size_t count = 0;
    size_t bytes = kBatchHeaderBytes;
    while (count < tx->buffer.size() &&
           count < static_cast<size_t>(options_.batch_max_frames)) {
      const size_t add = 4 + tx->buffer[count].size();
      if (count > 0 && bytes + add > options_.max_frame_bytes) break;
      bytes += add;
      ++count;
    }
    Status sent;
    size_t coded_size = 0;
    if (count == 1 && bytes > options_.max_frame_bytes) {
      // The bundle overhead alone would overflow: ship the frame raw.
      std::vector<uint8_t> one = tx->buffer.front();
      coded_size = one.size();
      sent = base_->Send(dest, std::move(one));
    } else {
      std::vector<std::vector<uint8_t>> group(
          tx->buffer.begin(),
          tx->buffer.begin() + static_cast<long>(count));
      std::vector<uint8_t> bundle;
      EncodeBatch(group, &bundle);
      coded_size = bundle.size();
      sent = base_->Send(dest, std::move(bundle));
    }
    if (!sent.ok()) {
      // Unsent frames stay buffered (in order) for the next flush.
      if (groups > 0) {
        flushes_.fetch_add(1, std::memory_order_relaxed);
        m_flushes_.Inc();
      }
      return sent;
    }
    coded_bytes_.fetch_add(static_cast<int64_t>(coded_size),
                           std::memory_order_relaxed);
    m_coded_bytes_.Inc(static_cast<int64_t>(coded_size));
    for (size_t i = 0; i < count; ++i) {
      tx->buffered_bytes -= tx->buffer.front().size();
      tx->buffer.pop_front();
    }
    ++groups;
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  m_flushes_.Inc();
  if (groups > 1) {
    split_flushes_.fetch_add(1, std::memory_order_relaxed);
    m_split_flushes_.Inc();
  }
  return Status::OK();
}

Status CodecTransport::FlushAll() {
  if (!options_.spec.batch) return Status::OK();
  Status first_error;
  const int n = world();
  for (int dest = 0; dest < n; ++dest) {
    if (dest == rank()) continue;
    PeerTx& tx = *tx_[static_cast<size_t>(dest)];
    std::lock_guard<std::mutex> lock(tx.mu);
    const Status flushed = FlushLocked(dest, &tx);
    if (!flushed.ok() && first_error.ok()) first_error = flushed;
  }
  return first_error;
}

bool CodecTransport::DecodeFactorForSolver(int src,
                                           std::vector<uint8_t>* frame) {
  const std::vector<uint8_t>& in = *frame;
  if (in.size() < kFactorRowHeaderBytes) return true;  // solver reports it
  const uint8_t type = in[0];
  const uint8_t precision = in[1];
  const int k = ReadAt<uint16_t>(in.data(), 2);
  const int32_t id = ReadAt<int32_t>(in.data(), 4);
  const uint32_t version = ReadAt<uint32_t>(in.data(), 8);
  const uint32_t flags = ReadAt<uint32_t>(in.data(), 12);
  const WirePrecision wire = options_.spec.WireOf(options_.native);
  if (k < 1 || k > kMaxWireK || id < 0 ||
      precision != static_cast<uint8_t>(wire) || src < 0 ||
      static_cast<size_t>(src) >= rx_.size()) {
    return true;  // malformed — hand it to the solver's decoder to report
  }
  PeerRx& rx = rx_[static_cast<size_t>(src)];
  const size_t row_bytes = static_cast<size_t>(k) * wire_entry_bytes_;
  std::vector<uint8_t> entries;
  uint32_t out_flags = flags;

  if ((flags & kFactorRowFlagDelta) != 0) {
    if (!options_.spec.delta) return true;  // solver rejects the flag
    const size_t mask_bytes = static_cast<size_t>(k + 7) / 8;
    const size_t fixed = kFactorRowHeaderBytes + kDeltaPrefixBytes + mask_bytes;
    if (in.size() < fixed) {
      NOMAD_LOG(kWarning) << "codec: truncated delta frame from rank " << src;
      return false;
    }
    const uint32_t base_version =
        ReadAt<uint32_t>(in.data(), kFactorRowHeaderBytes);
    const uint16_t nchanged =
        ReadAt<uint16_t>(in.data(), kFactorRowHeaderBytes + 4);
    if (nchanged > k ||
        in.size() != fixed + static_cast<size_t>(nchanged) *
                                 wire_entry_bytes_) {
      NOMAD_LOG(kWarning) << "codec: malformed delta frame from rank " << src;
      return false;
    }
    const auto it = rx.cache.find(id);
    if (it == rx.cache.end() || it->second.version != base_version ||
        it->second.entries.size() != row_bytes) {
      // A replica re-ordered past the row's real traffic (only injected
      // duplicates/delays get here — see the class comment). The solver's
      // hop-version check would discard it too; drop it before it can
      // decode against the wrong baseline.
      return false;
    }
    entries = it->second.entries;
    const uint8_t* mask = in.data() + kFactorRowHeaderBytes + kDeltaPrefixBytes;
    const uint8_t* changed = mask + mask_bytes;
    size_t taken = 0;
    for (int i = 0; i < k; ++i) {
      if ((mask[i / 8] & (1u << (i % 8))) == 0) continue;
      if (taken >= nchanged) {
        NOMAD_LOG(kWarning) << "codec: delta mask/count mismatch from rank "
                            << src;
        return false;
      }
      std::memcpy(entries.data() + static_cast<size_t>(i) * wire_entry_bytes_,
                  changed + taken * wire_entry_bytes_, wire_entry_bytes_);
      ++taken;
    }
    if (taken != nchanged) {
      NOMAD_LOG(kWarning) << "codec: delta mask/count mismatch from rank "
                          << src;
      return false;
    }
    out_flags = flags & ~kFactorRowFlagDelta;
    rx.cache[id] = RowCache{version, entries};
  } else {
    if (in.size() != kFactorRowHeaderBytes + row_bytes) return true;
    entries.assign(in.begin() + kFactorRowHeaderBytes, in.end());
    if (options_.spec.delta) {
      // Monotone update: a delayed replica of an older full row must not
      // roll the baseline back under the sender's feet.
      const auto it = rx.cache.find(id);
      if (it == rx.cache.end() || version >= it->second.version) {
        rx.cache[id] = RowCache{version, entries};
      }
    }
    if (!options_.spec.quantizes()) return true;  // native full row, as-is
  }

  // Rebuild the solver-native frame from the wire entries.
  std::vector<uint8_t> out;
  const MsgType msg_type = static_cast<MsgType>(type);
  if (options_.spec.quantizes()) {
    const auto expand = [this](const uint8_t* at) {
      uint16_t q;
      std::memcpy(&q, at, 2);
      return options_.spec.bf16 ? F32FromBf16(q) : F32FromF16(q);
    };
    if (options_.native == WirePrecision::kF32) {
      std::vector<float> values(static_cast<size_t>(k));
      for (int i = 0; i < k; ++i) {
        values[static_cast<size_t>(i)] =
            expand(entries.data() + static_cast<size_t>(i) * 2);
      }
      EncodeFactorRow<float>(msg_type, id, version, values.data(), k, &out,
                             out_flags);
    } else {
      std::vector<double> values(static_cast<size_t>(k));
      for (int i = 0; i < k; ++i) {
        values[static_cast<size_t>(i)] = static_cast<double>(
            expand(entries.data() + static_cast<size_t>(i) * 2));
      }
      EncodeFactorRow<double>(msg_type, id, version, values.data(), k, &out,
                              out_flags);
    }
  } else {
    // Delta-only spec: the entries are already native bytes.
    out.reserve(kFactorRowHeaderBytes + entries.size());
    AppendFactorHeader(&out, type, options_.native, k, id, version, out_flags);
    out.insert(out.end(), entries.begin(), entries.end());
  }
  *frame = std::move(out);
  return true;
}

bool CodecTransport::TryReceive(std::vector<uint8_t>* frame, int* src) {
  if (!options_.spec.enabled()) return base_->TryReceive(frame, src);
  for (;;) {
    std::vector<uint8_t> raw;
    int from = -1;
    if (!unbatched_.empty()) {
      from = unbatched_.front().first;
      raw = std::move(unbatched_.front().second);
      unbatched_.pop_front();
    } else if (!base_->TryReceive(&raw, &from)) {
      return false;
    }
    if (raw.empty()) continue;
    const uint8_t type = raw[0];
    if (type == static_cast<uint8_t>(MsgType::kBatch)) {
      auto sub = DecodeBatch(raw.data(), raw.size());
      if (!sub.ok()) {
        NOMAD_LOG(kWarning) << "codec: dropping corrupt batch from rank "
                            << from << ": " << sub.status().ToString();
        continue;
      }
      for (auto& f : sub.value()) unbatched_.emplace_back(from, std::move(f));
      continue;
    }
    if ((type == static_cast<uint8_t>(MsgType::kToken) ||
         type == static_cast<uint8_t>(MsgType::kHRow)) &&
        (options_.spec.quantizes() || options_.spec.delta)) {
      if (!DecodeFactorForSolver(from, &raw)) {
        stale_rejects_.fetch_add(1, std::memory_order_relaxed);
        m_stale_rejects_.Inc();
        continue;
      }
    }
    if (IsLeaseSyncControl(raw) && from >= 0 &&
        static_cast<size_t>(from) < rx_.size()) {
      // Channel-flush marker: discard this channel's delta baselines, in
      // the same stream position where the sender discarded its own.
      rx_[static_cast<size_t>(from)].cache.clear();
    }
    *frame = std::move(raw);
    *src = from;
    return true;
  }
}

Status CodecTransport::Close() {
  const Status flushed = FlushAll();
  const Status closed = base_->Close();
  return flushed.ok() ? closed : flushed;
}

CodecTransport::CodecStats CodecTransport::codec_stats() const {
  CodecStats stats;
  stats.raw_bytes = raw_bytes_.load(std::memory_order_relaxed);
  stats.coded_bytes = coded_bytes_.load(std::memory_order_relaxed);
  stats.delta_hits = delta_hits_.load(std::memory_order_relaxed);
  stats.delta_full = delta_full_.load(std::memory_order_relaxed);
  stats.stale_rejects = stale_rejects_.load(std::memory_order_relaxed);
  stats.flushes = flushes_.load(std::memory_order_relaxed);
  stats.split_flushes = split_flushes_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace net
}  // namespace nomad
