#ifndef NOMAD_NET_CODEC_H_
#define NOMAD_NET_CODEC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.h"
#include "net/wire_format.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace nomad {
namespace net {

/// Wire codecs: composable payload-compression stages layered between the
/// distributed solver and its Transport (the shape of ytsaurus's
/// yt/ytlib/codecs layer, specialized to NOMAD's three frame families).
///
/// Three stages, each independently negotiable:
///  - **bf16 / f16 quantization** of factor-row payloads (kToken/kHRow):
///    the double-accumulating SGD kernels tolerate low-precision *storage*,
///    so the k wire entries shrink 4x (f64) or 2x (f32). kWRow gather
///    frames always stay full precision — the returned model is exact.
///  - **delta encoding** of rows against the receiver's last-seen copy per
///    (peer, column) channel: unchanged entries (common once quantization
///    floors small SGD steps, and across consecutive barrier broadcasts)
///    cost one bitmask bit instead of a full entry. Falls back to full
///    rows whenever it would not strictly shrink the frame, after
///    lease-flush/recovery markers, and for flagged (regrant) tokens.
///  - **batch coalescing**: token frames buffer per peer and ship as one
///    kBatch frame per flush — one transport length prefix instead of one
///    per token. Oversized flushes split into multiple frames, each within
///    the transport's max_frame_bytes.
///
/// Everything here is transparent to the solver: a CodecTransport pair
/// encodes on one end and restores solver-native frames on the other.

/// Converts an IEEE float to bfloat16 (round to nearest even; NaN stays
/// NaN, infinities and signed zeros map exactly).
uint16_t Bf16FromF32(float value);

/// Expands a bfloat16 to the IEEE float it denotes (exact).
float F32FromBf16(uint16_t bits);

/// Converts an IEEE float to IEEE 754 binary16 (round to nearest even,
/// with half subnormals; overflow goes to infinity, NaN stays NaN).
uint16_t F16FromF32(float value);

/// Expands a binary16 to the IEEE float it denotes (exact).
float F32FromF16(uint16_t bits);

/// Which codec stages a job runs. Both ends of every channel must agree —
/// the spec serializes into the Hello handshake's codec byte and the TCP
/// transport refuses mismatched peers, exactly like k and precision.
struct WireCodecSpec {
  bool bf16 = false;   ///< Quantize kToken/kHRow payload entries to bf16.
  bool f16 = false;    ///< Quantize to IEEE half instead (excludes bf16).
  bool delta = false;  ///< Delta-encode rows against the receiver's cache.
  bool batch = false;  ///< Coalesce token frames into kBatch bundles.

  /// True when any stage is on (a disabled spec means "no codec layer").
  bool enabled() const { return bf16 || f16 || delta || batch; }

  /// True when a quantization stage is on.
  bool quantizes() const { return bf16 || f16; }

  /// The wire precision factor-row payloads travel at under this spec
  /// (`native` when no quantization stage is on).
  WirePrecision WireOf(WirePrecision native) const {
    if (bf16) return WirePrecision::kBf16;
    if (f16) return WirePrecision::kF16;
    return native;
  }

  /// One-byte encoding for the Hello handshake (bit 0 bf16, 1 f16,
  /// 2 delta, 3 batch).
  uint8_t ToByte() const;

  /// Decodes a Hello codec byte; unknown bits or bf16+f16 together are
  /// InvalidArgument.
  static Result<WireCodecSpec> FromByte(uint8_t byte);

  /// Parses a CLI spec: "none", or "+"-joined stage names out of
  /// {bf16, f16, delta, batch} (e.g. "bf16+delta"). bf16 and f16 are
  /// mutually exclusive; unknown or repeated stages are InvalidArgument.
  static Result<WireCodecSpec> Parse(const std::string& spec);

  /// Canonical spec string ("none" when disabled).
  std::string ToString() const;

  /// Stage-for-stage equality (what the hello handshake compares).
  bool operator==(const WireCodecSpec& other) const {
    return bf16 == other.bf16 && f16 == other.f16 && delta == other.delta &&
           batch == other.batch;
  }
};

/// Coalesces `frames` into one kBatch payload:
/// [type u8][reserved u8][count u16] then count x [u32 len][frame bytes].
/// Exposed for tests; CodecTransport sizes its bundles itself.
void EncodeBatch(const std::vector<std::vector<uint8_t>>& frames,
                 std::vector<uint8_t>* out);

/// Splits a kBatch payload back into its sub-frames, validating the header,
/// that every sub-frame is non-empty, and that the lengths tile the payload
/// exactly; anything else is InvalidArgument.
Result<std::vector<std::vector<uint8_t>>> DecodeBatch(const uint8_t* data,
                                                      size_t size);

/// Tuning knobs and wiring for one CodecTransport endpoint.
struct CodecOptions {
  WireCodecSpec spec;  ///< Stages to run (must match every peer's).

  /// Solver-native factor precision: what EncodeFactorRow produced on the
  /// send side and what the receive side restores frames to.
  WirePrecision native = WirePrecision::kF64;

  /// Ceiling on any single transport payload this codec emits. Must not
  /// exceed the transport's own limit (TcpOptions::max_frame_bytes) —
  /// coalesced flushes larger than this split into multiple frames.
  size_t max_frame_bytes = 1 << 22;

  /// Flush a peer's batch buffer once it holds this many frames…
  int batch_max_frames = 64;
  /// …or this many payload bytes, whichever comes first.
  size_t batch_max_bytes = 1 << 14;

  /// Registry for the nomad_dist_codec_* series (null = counters stay
  /// internal-only) and the rank label they carry.
  obs::MetricsRegistry* registry = nullptr;
  int metrics_rank = -1;  ///< Value of the `rank` label.
};

/// Decorates a Transport with the negotiated codec stages. The solver
/// stacks one of these over whatever endpoint it was handed (loopback,
/// TCP, or a FaultInjectingTransport), so every stage composes with fault
/// injection and heartbeats unchanged.
///
/// Contract notes on top of Transport's:
///  - Send() keeps the per-(sender, receiver) FIFO order: buffered tokens
///    are flushed before any non-token frame to the same peer goes out.
///  - With batching on, an accepted token may sit in the per-peer buffer
///    until the next threshold crossing or FlushAll() — the solver's
///    driver flushes every pump step, bounding the latency, and a flush
///    that fails (peer unavailable) keeps the frames buffered for retry.
///  - Delta caches are invalidated by the recovery protocol's kLeaseSync
///    channel markers on both ends of each channel (same FIFO position),
///    so post-recovery rows always go full — regrants never decode
///    against pre-death state.
///  - A delta frame whose base version misses the receiver cache is
///    dropped (counted in stale_rejects). Per-channel FIFO plus exclusive
///    token ownership guarantee this only happens to injected duplicate or
///    re-ordered replicas, which the solver's hop-version check would
///    discard anyway.
class CodecTransport final : public Transport {
 public:
  /// Borrows `base` (not owned; must outlive this decorator).
  CodecTransport(Transport* base, const CodecOptions& options);
  ~CodecTransport() override;

  int rank() const override;   ///< Forwards to the base transport.
  int world() const override;  ///< Forwards to the base transport.

  /// Encodes `frame` through the negotiated stages and forwards it (or
  /// buffers it, with batching on — see the class comment).
  Status Send(int dest, std::vector<uint8_t> frame) override;

  /// Pops the next solver-visible frame: unwraps kBatch bundles, restores
  /// quantized/delta factor rows to the native precision, drops stale
  /// delta replicas, and passes control frames through.
  bool TryReceive(std::vector<uint8_t>* frame, int* src) override;

  TransportStats stats() const override;  ///< Base stats (post-codec bytes).

  PeerStatus peer_status(int peer) const override;  ///< Forwards to base.

  /// Flushes every peer's batch buffer now. The distributed driver calls
  /// this once per pump step and before quiescing, so buffered tokens
  /// never stall the conservation census. No-op without the batch stage.
  Status FlushAll();

  /// FlushAll(), then closes the base transport.
  Status Close() override;

  /// The spec this endpoint runs.
  const WireCodecSpec& spec() const { return options_.spec; }

  /// Counters of the codec work done so far (thread-safe snapshot). The
  /// same numbers export as nomad_dist_codec_* when a registry is wired.
  struct CodecStats {
    int64_t raw_bytes = 0;      ///< Payload bytes accepted from the solver.
    int64_t coded_bytes = 0;    ///< Payload bytes handed to the transport.
    int64_t delta_hits = 0;     ///< Rows shipped as deltas.
    int64_t delta_full = 0;     ///< Delta-eligible rows shipped full.
    int64_t stale_rejects = 0;  ///< Delta replicas dropped on receive.
    int64_t flushes = 0;        ///< Batch flushes that shipped frames.
    int64_t split_flushes = 0;  ///< Flushes split over several frames.
  };
  /// Snapshot of the counters above.
  CodecStats codec_stats() const;

 private:
  /// Last row seen per (peer, column) on one directed channel: the hop
  /// version and the wire-precision entry bytes deltas are taken against.
  struct RowCache {
    uint32_t version = 0;
    std::vector<uint8_t> entries;
  };

  /// Per-destination sender state (mutex-guarded: workers send
  /// concurrently).
  struct PeerTx {
    std::mutex mu;
    std::map<int32_t, RowCache> cache;          // delta baseline per column
    std::deque<std::vector<uint8_t>> buffer;    // coalescing buffer
    size_t buffered_bytes = 0;
  };

  /// Per-source receiver state (driver thread only — no lock needed).
  struct PeerRx {
    std::map<int32_t, RowCache> cache;
  };

  /// Quantize + delta stages for one outgoing factor row; returns the wire
  /// frame and records the cache update to apply once the bytes are
  /// committed (buffered or accepted by the base transport).
  std::vector<uint8_t> EncodeFactorForWire(PeerTx* tx,
                                           const std::vector<uint8_t>& frame,
                                           int32_t* cache_id,
                                           RowCache* cache_update);

  /// Restores one received wire factor row to a native frame in place;
  /// false = stale delta replica, drop it.
  bool DecodeFactorForSolver(int src, std::vector<uint8_t>* frame);

  /// Sends tx->buffer to `dest` as max_frame_bytes-sized kBatch bundles
  /// (requires tx->mu held). On error the unsent tail stays buffered.
  Status FlushLocked(int dest, PeerTx* tx);

  Transport* const base_;
  const CodecOptions options_;
  const size_t native_entry_bytes_;
  const size_t wire_entry_bytes_;

  std::vector<std::unique_ptr<PeerTx>> tx_;  // index: destination rank
  std::vector<PeerRx> rx_;                   // index: source rank
  std::deque<std::pair<int, std::vector<uint8_t>>> unbatched_;

  std::atomic<int64_t> raw_bytes_{0};
  std::atomic<int64_t> coded_bytes_{0};
  std::atomic<int64_t> delta_hits_{0};
  std::atomic<int64_t> delta_full_{0};
  std::atomic<int64_t> stale_rejects_{0};
  std::atomic<int64_t> flushes_{0};
  std::atomic<int64_t> split_flushes_{0};

  obs::Counter m_raw_bytes_;
  obs::Counter m_coded_bytes_;
  obs::Counter m_delta_hits_;
  obs::Counter m_delta_full_;
  obs::Counter m_stale_rejects_;
  obs::Counter m_flushes_;
  obs::Counter m_split_flushes_;
};

}  // namespace net
}  // namespace nomad

#endif  // NOMAD_NET_CODEC_H_
