#ifndef NOMAD_NET_LOOPBACK_TRANSPORT_H_
#define NOMAD_NET_LOOPBACK_TRANSPORT_H_

#include <memory>
#include <vector>

#include "net/transport.h"

namespace nomad {
namespace net {

/// Creates `world` in-process Transport endpoints wired to each other —
/// rank-per-thread distributed runs for tests, benchmarks, and single-host
/// CI. Frames still cross the full encode/decode path (Send moves the
/// encoded bytes, nothing is shared by reference), so a loopback run
/// exercises the same wire contract as TCP minus the sockets.
///
/// Endpoint i is the transport for rank i. Each endpoint keeps the shared
/// fabric alive, so the vector's elements may outlive each other and be
/// handed to different threads; all endpoint methods are thread-safe per
/// the Transport contract.
std::vector<std::unique_ptr<Transport>> MakeLoopbackFabric(int world);

/// Like MakeLoopbackFabric(world), with liveness detection: when
/// `heartbeat.enabled()`, every endpoint emits kHeartbeat control beacons
/// to its peers (piggybacked on Send()/TryReceive() calls — the solver's
/// driver pumps the transport continuously, so no extra thread is needed),
/// swallows inbound beacons before they reach the caller, and reports a
/// silent peer kDead through peer_status() after the heartbeat timeout. A
/// rank that stops pumping — killed by a FaultInjectingTransport plan,
/// wedged, or Close()d — goes dead in its peers' eyes within the timeout.
std::vector<std::unique_ptr<Transport>> MakeLoopbackFabric(
    int world, const HeartbeatOptions& heartbeat);

}  // namespace net
}  // namespace nomad

#endif  // NOMAD_NET_LOOPBACK_TRANSPORT_H_
