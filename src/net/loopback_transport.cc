#include "net/loopback_transport.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "net/wire_format.h"
#include "util/aligned.h"

namespace nomad {
namespace net {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool IsHeartbeatFrame(const std::vector<uint8_t>& payload) {
  return payload.size() >= 2 &&
         payload[0] == static_cast<uint8_t>(MsgType::kControl) &&
         payload[1] == static_cast<uint8_t>(ControlKind::kHeartbeat);
}

// Per-rank inbox, padded to its own cache lines like the token queues so
// adjacent ranks' mailboxes do not false-share.
struct alignas(kCacheLineBytes) Inbox {
  std::mutex mu;
  std::deque<std::pair<int, std::vector<uint8_t>>> frames;  // (src, payload)
};

// State shared by all endpoints of one fabric; kept alive by shared_ptr so
// endpoints may be destroyed in any order.
struct Fabric {
  Fabric(int world, const HeartbeatOptions& hb)
      : inboxes(static_cast<size_t>(world)), heartbeat(hb) {}
  std::vector<Inbox> inboxes;
  const HeartbeatOptions heartbeat;
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<Fabric> fabric, int rank, int world)
      : fabric_(std::move(fabric)),
        rank_(rank),
        world_(world),
        last_heard_(static_cast<size_t>(world)) {
    const int64_t now = NowNs();
    last_beat_.store(now, std::memory_order_relaxed);
    for (auto& t : last_heard_) t.store(now, std::memory_order_relaxed);
  }

  int rank() const override { return rank_; }
  int world() const override { return world_; }

  Status Send(int dest, std::vector<uint8_t> frame) override {
    if (dest < 0 || dest >= world_ || dest == rank_) {
      return Status::InvalidArgument("loopback: bad destination rank " +
                                     std::to_string(dest));
    }
    if (closed_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("loopback: endpoint closed");
    }
    MaybeBeat();
    Deliver(dest, std::move(frame));
    return Status::OK();
  }

  bool TryReceive(std::vector<uint8_t>* frame, int* src) override {
    MaybeBeat();
    Inbox& inbox = fabric_->inboxes[static_cast<size_t>(rank_)];
    // Beacons are transport-internal: record the liveness signal and keep
    // popping until a real frame (or an empty inbox) surfaces.
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(inbox.mu);
        if (inbox.frames.empty()) return false;
        *src = inbox.frames.front().first;
        *frame = std::move(inbox.frames.front().second);
        inbox.frames.pop_front();
      }
      messages_received_.fetch_add(1, std::memory_order_relaxed);
      bytes_received_.fetch_add(static_cast<int64_t>(frame->size()),
                                std::memory_order_relaxed);
      last_heard_[static_cast<size_t>(*src)].store(NowNs(),
                                                   std::memory_order_relaxed);
      if (!IsHeartbeatFrame(*frame)) return true;
    }
  }

  TransportStats stats() const override {
    TransportStats s;
    s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    s.messages_received = messages_received_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    return s;
  }

  PeerStatus peer_status(int peer) const override {
    if (peer == rank_ || peer < 0 || peer >= world_ ||
        !fabric_->heartbeat.enabled()) {
      return PeerStatus::kAlive;
    }
    const double silent_seconds =
        static_cast<double>(
            NowNs() -
            last_heard_[static_cast<size_t>(peer)].load(
                std::memory_order_relaxed)) *
        1e-9;
    return silent_seconds > fabric_->heartbeat.effective_timeout()
               ? PeerStatus::kDead
               : PeerStatus::kAlive;
  }

  Status Close() override {
    closed_.store(true, std::memory_order_release);
    return Status::OK();
  }

 private:
  void Deliver(int dest, std::vector<uint8_t> frame) {
    const int64_t bytes = static_cast<int64_t>(frame.size());
    {
      Inbox& inbox = fabric_->inboxes[static_cast<size_t>(dest)];
      std::lock_guard<std::mutex> lock(inbox.mu);
      inbox.frames.emplace_back(rank_, std::move(frame));
    }
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Emits one heartbeat beacon to every peer when the interval elapsed.
  /// Piggybacked on Send()/TryReceive() — the distributed driver pumps the
  /// endpoint far more often than any sane interval, so beacons stay
  /// timely without a dedicated thread.
  void MaybeBeat() {
    const HeartbeatOptions& hb = fabric_->heartbeat;
    if (!hb.enabled() || world_ < 2 ||
        closed_.load(std::memory_order_acquire)) {
      return;
    }
    const int64_t now = NowNs();
    const int64_t interval_ns =
        static_cast<int64_t>(hb.interval_seconds * 1e9);
    int64_t last = last_beat_.load(std::memory_order_relaxed);
    if (now - last < interval_ns) return;
    if (!last_beat_.compare_exchange_strong(last, now,
                                            std::memory_order_relaxed)) {
      return;  // another thread of this endpoint just beat
    }
    ControlFrame beat;
    beat.kind = ControlKind::kHeartbeat;
    beat.rank = rank_;
    std::vector<uint8_t> payload;
    EncodeControl(beat, &payload);
    for (int r = 0; r < world_; ++r) {
      if (r == rank_) continue;
      Deliver(r, payload);  // copies: each inbox owns its frame
    }
  }

  std::shared_ptr<Fabric> fabric_;
  const int rank_;
  const int world_;
  std::atomic<bool> closed_{false};
  std::atomic<int64_t> messages_sent_{0};
  std::atomic<int64_t> messages_received_{0};
  std::atomic<int64_t> bytes_sent_{0};
  std::atomic<int64_t> bytes_received_{0};
  std::atomic<int64_t> last_beat_{0};
  /// Last time anything (beacon or data) arrived from each peer.
  std::vector<std::atomic<int64_t>> last_heard_;
};

}  // namespace

std::vector<std::unique_ptr<Transport>> MakeLoopbackFabric(int world) {
  return MakeLoopbackFabric(world, HeartbeatOptions());
}

std::vector<std::unique_ptr<Transport>> MakeLoopbackFabric(
    int world, const HeartbeatOptions& heartbeat) {
  auto fabric = std::make_shared<Fabric>(world, heartbeat);
  std::vector<std::unique_ptr<Transport>> endpoints;
  endpoints.reserve(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    endpoints.push_back(
        std::make_unique<LoopbackTransport>(fabric, r, world));
  }
  return endpoints;
}

}  // namespace net
}  // namespace nomad
