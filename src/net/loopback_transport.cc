#include "net/loopback_transport.h"

#include <atomic>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "util/aligned.h"

namespace nomad {
namespace net {

namespace {

// Per-rank inbox, padded to its own cache lines like the token queues so
// adjacent ranks' mailboxes do not false-share.
struct alignas(kCacheLineBytes) Inbox {
  std::mutex mu;
  std::deque<std::pair<int, std::vector<uint8_t>>> frames;  // (src, payload)
};

// State shared by all endpoints of one fabric; kept alive by shared_ptr so
// endpoints may be destroyed in any order.
struct Fabric {
  explicit Fabric(int world) : inboxes(static_cast<size_t>(world)) {}
  std::vector<Inbox> inboxes;
};

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<Fabric> fabric, int rank, int world)
      : fabric_(std::move(fabric)), rank_(rank), world_(world) {}

  int rank() const override { return rank_; }
  int world() const override { return world_; }

  Status Send(int dest, std::vector<uint8_t> frame) override {
    if (dest < 0 || dest >= world_ || dest == rank_) {
      return Status::InvalidArgument("loopback: bad destination rank " +
                                     std::to_string(dest));
    }
    if (closed_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("loopback: endpoint closed");
    }
    const int64_t bytes = static_cast<int64_t>(frame.size());
    {
      Inbox& inbox = fabric_->inboxes[static_cast<size_t>(dest)];
      std::lock_guard<std::mutex> lock(inbox.mu);
      inbox.frames.emplace_back(rank_, std::move(frame));
    }
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
    return Status::OK();
  }

  bool TryReceive(std::vector<uint8_t>* frame, int* src) override {
    Inbox& inbox = fabric_->inboxes[static_cast<size_t>(rank_)];
    std::lock_guard<std::mutex> lock(inbox.mu);
    if (inbox.frames.empty()) return false;
    *src = inbox.frames.front().first;
    *frame = std::move(inbox.frames.front().second);
    inbox.frames.pop_front();
    messages_received_.fetch_add(1, std::memory_order_relaxed);
    bytes_received_.fetch_add(static_cast<int64_t>(frame->size()),
                              std::memory_order_relaxed);
    return true;
  }

  TransportStats stats() const override {
    TransportStats s;
    s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    s.messages_received = messages_received_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    return s;
  }

  Status Close() override {
    closed_.store(true, std::memory_order_release);
    return Status::OK();
  }

 private:
  std::shared_ptr<Fabric> fabric_;
  const int rank_;
  const int world_;
  std::atomic<bool> closed_{false};
  std::atomic<int64_t> messages_sent_{0};
  std::atomic<int64_t> messages_received_{0};
  std::atomic<int64_t> bytes_sent_{0};
  std::atomic<int64_t> bytes_received_{0};
};

}  // namespace

std::vector<std::unique_ptr<Transport>> MakeLoopbackFabric(int world) {
  auto fabric = std::make_shared<Fabric>(world);
  std::vector<std::unique_ptr<Transport>> endpoints;
  endpoints.reserve(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    endpoints.push_back(
        std::make_unique<LoopbackTransport>(fabric, r, world));
  }
  return endpoints;
}

}  // namespace net
}  // namespace nomad
