#include "net/dist_nomad.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/shard.h"
#include "eval/metrics.h"
#include "net/codec.h"
#include "net/loopback_transport.h"
#include "net/wire_format.h"
#include "nomad/batch_controller.h"
#include "nomad/pause_gate.h"
#include "nomad/token_router.h"
#include "obs/metrics.h"
#include "obs/solver_metrics.h"
#include "obs/timeseries.h"
#include "queue/mpmc_queue.h"
#include "sched/schedule.h"
#include "solver/sgd_kernel.h"
#include "util/logging.h"
#include "util/numa_topology.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace nomad {
namespace net {

namespace {

/// Version headroom added when a lost token is re-granted: the dead rank
/// may have advanced the token's hop counter past what any survivor saw,
/// and the re-granted version must dominate every counter that could still
/// be in flight. Tokens hop a handful of times per epoch, so a million is
/// unreachable headroom for any real run (and the wire-level regrant flag
/// makes receivers accept the reset unconditionally anyway).
constexpr uint32_t kRegrantVersionBump = 1u << 20;

/// One rank's training run for one storage precision. The worker pool is
/// the NomadSolver hot path (batched MpmcQueue drains, TokenRouter,
/// optional BatchController and NUMA placement); what is new is the driver,
/// which pumps the transport and coordinates the cross-rank barrier
/// protocol of docs/ARCHITECTURE.md ("Distributed layer").
template <typename Real>
class RankRun {
 public:
  RankRun(const Dataset& ds, const DistNomadOptions& options,
          Transport* transport, const UpdateKernelT<Real>& kernel,
          CodecTransport* codec = nullptr)
      : ds_(ds),
        o_(options),
        opt_(options.train),
        transport_(transport),
        codec_(codec),
        world_(transport->world()),
        rank_(transport->rank()),
        p_(options.train.num_workers),
        k_(options.train.rank),
        kernel_(kernel),
        counts_(ds.train.nnz()),
        gate_(options.train.num_workers),
        driver_rng_(options.train.seed ^ 0xD157D157ULL),
        version_(static_cast<size_t>(ds.cols)),
        owner_(static_cast<size_t>(ds.cols)) {}

  Result<TrainResult> Run() {
    Setup();
    StartWorkers();
    const Status driver = DriveToCompletion();
    stop_.store(true, std::memory_order_relaxed);
    gate_.Resume();
    for (auto& t : workers_) t.join();
    NOMAD_RETURN_IF_ERROR(driver);

    TrainResult result;
    result.solver_name = "dist_nomad";
    result.precision = opt_.precision;
    if (timeline_ != nullptr) {
      timeline_->StopSampler();
      result.timeline = timeline_->Points();
    }
    result.trace = std::move(trace_);
    result.total_updates = global_updates_;
    result.total_seconds = global_seconds_;
    result.worker_batch = std::move(batch_stats_);
    result.rank_traffic = std::move(rank_traffic_);
    for (int r = 0; r < world_; ++r) {
      if (!IsLive(r)) result.dead_ranks.push_back(r);
    }
    StoreTrainedFactors(std::move(w_), std::move(h_), &result);
    return result;
  }

 private:
  // ---- setup ----

  void Setup() {
    InitFactorsT<Real>(ds_, opt_, &w_, &h_);
    const int global_workers = world_ * p_;
    partition_ = opt_.partition_by_ratings
                     ? UserPartition::ByRatings(ds_.train, global_workers)
                     : UserPartition::ByRows(ds_.rows, global_workers);
    shards_ = ColumnShards::Build(ds_.train, partition_);
    row_begin_ = partition_.Begin(rank_ * p_);
    row_end_ = partition_.End(rank_ * p_ + p_ - 1);

    // Global-worker ownership starts at the static partition and grows when
    // this rank adopts a dead rank's workers during recovery. worker q
    // processes worker_globals_[q]'s shard entries; evaluation and the
    // final gather walk every owned global's user range.
    dead_.assign(static_cast<size_t>(world_), 0);
    seen_hrow_ids_.assign(static_cast<size_t>(world_), {});
    worker_globals_.assign(static_cast<size_t>(p_), {});
    my_globals_.clear();
    for (int q = 0; q < p_; ++q) {
      worker_globals_[static_cast<size_t>(q)].push_back(rank_ * p_ + q);
      my_globals_.push_back(rank_ * p_ + q);
    }

    // Satellite budget lease: with a hard max_updates budget B, each rank
    // starts with an equal share as its local cap; rank 0 re-leases the
    // remainder at every barrier (kResume.held), so the job stops within a
    // token batch of B instead of overshooting by up to an epoch.
    if (opt_.max_updates > 0) {
      const int64_t base = opt_.max_updates / world_;
      const int64_t extra = rank_ < opt_.max_updates % world_ ? 1 : 0;
      update_cap_.store(base + extra, std::memory_order_relaxed);
    }

    remote_prob_ = o_.remote_token_fraction;
    if (remote_prob_ < 0) {
      remote_prob_ = static_cast<double>(world_ - 1) /
                     static_cast<double>(world_);
    }
    if (world_ == 1) remote_prob_ = 0.0;

    // NUMA placement of this rank's workers and factor slices — the same
    // policy block as the shared-memory solver, scoped to the rank's rows.
    const NumaTopology topo = opt_.numa_policy == NumaPolicy::kOff
                                  ? NumaTopology::SingleNode()
                                  : NumaTopology::Detect();
    numa_place_ = opt_.numa_policy != NumaPolicy::kOff && topo.multi_node();
    if (numa_place_) {
      const std::vector<int> worker_node = topo.AssignWorkers(p_);
      worker_cpus_.resize(static_cast<size_t>(p_));
      std::vector<int> node_ids;
      for (const NumaNode& n : topo.nodes()) node_ids.push_back(n.id);
      for (int q = 0; q < p_; ++q) {
        worker_cpus_[static_cast<size_t>(q)] =
            topo.node(worker_node[static_cast<size_t>(q)]).cpus;
      }
      const size_t h_bytes = static_cast<size_t>(ds_.cols) *
                             static_cast<size_t>(h_.stride()) * sizeof(Real);
      if (opt_.numa_policy == NumaPolicy::kAuto) {
        for (int q = 0; q < p_; ++q) {
          const int32_t begin = partition_.Begin(rank_ * p_ + q);
          const int32_t end = partition_.End(rank_ * p_ + q);
          if (end <= begin) continue;
          BindMemoryToNode(
              w_.Row(begin),
              static_cast<size_t>(end - begin) *
                  static_cast<size_t>(w_.stride()) * sizeof(Real),
              topo.node(worker_node[static_cast<size_t>(q)]).id);
        }
        InterleaveMemory(h_.Row(0), h_bytes, node_ids);
      } else {  // NumaPolicy::kInterleave
        InterleaveMemory(w_.Row(0),
                         static_cast<size_t>(ds_.rows) *
                             static_cast<size_t>(w_.stride()) * sizeof(Real),
                         node_ids);
        InterleaveMemory(h_.Row(0), h_bytes, node_ids);
      }
      router_ = std::make_unique<TokenRouter>(opt_.routing, p_);
      router_->MakeNumaAware(worker_node);
    } else {
      router_ = std::make_unique<TokenRouter>(opt_.routing, p_);
    }

    queues_.reserve(static_cast<size_t>(p_));
    for (int q = 0; q < p_; ++q) {
      queues_.push_back(std::make_unique<MpmcQueue<int32_t>>());
    }
    // Deterministic global scatter: every rank draws the same sequence and
    // keeps only the tokens that land on its own workers, so the initial
    // distribution matches the single-process solver's scatter exactly.
    Rng scatter(opt_.seed ^ 0xA5A5A5A5ULL);
    for (int32_t j = 0; j < ds_.cols; ++j) {
      const int g =
          static_cast<int>(scatter.NextBelow(static_cast<uint64_t>(
              world_ * p_)));
      if (g / p_ == rank_) {
        queues_[static_cast<size_t>(g % p_)]->Push(j);
      }
    }
    for (auto& o : owner_) o.store(-1, std::memory_order_relaxed);

    local_epoch_updates_ = 0;
    for (int q = 0; q < p_; ++q) {
      local_epoch_updates_ += shards_.WorkerNnz(rank_ * p_ + q);
    }
    local_epoch_updates_ = std::max<int64_t>(local_epoch_updates_, 1);
    next_threshold_ = local_epoch_updates_;

    // Sized up front: a fast peer's h-row broadcast can land while this
    // rank is still in the conservation phase of the same barrier, so Pump
    // must be able to count it at any time.
    hrow_received_.assign(static_cast<size_t>(world_), 0);
    wrow_received_.assign(static_cast<size_t>(world_), 0);

    // Observability handles. Every series carries rank="r" so a loopback
    // world sharing one process-wide registry keeps the ranks apart.
    obs::MetricsRegistry* resolved = obs::ResolveRegistry(opt_.metrics);
    registry_ = resolved->enabled() ? resolved : &fallback_registry_;
    const obs::Labels rl = {{"rank", std::to_string(rank_)}};
    tokens_sent_ = registry_->GetCounter("nomad_dist_tokens_sent_total", rl);
    tokens_received_ =
        registry_->GetCounter("nomad_dist_tokens_received_total", rl);
    tokens_sent0_ = tokens_sent_.Value();
    tokens_received0_ = tokens_received_.Value();
    send_retries_ =
        registry_->GetCounter("nomad_dist_send_retries_total", rl);
    heartbeat_misses_ =
        registry_->GetCounter("nomad_dist_heartbeat_misses_total", rl);
    regrants_ = registry_->GetCounter("nomad_dist_regrants_total", rl);
    stale_tokens_ =
        registry_->GetCounter("nomad_dist_stale_tokens_total", rl);
    dead_frames_ = registry_->GetCounter("nomad_dist_dead_frames_total", rl);
    tx_frames_.resize(static_cast<size_t>(world_));
    tx_bytes_.resize(static_cast<size_t>(world_));
    rx_frames_.resize(static_cast<size_t>(world_));
    rx_bytes_.resize(static_cast<size_t>(world_));
    peer_alive_.resize(static_cast<size_t>(world_));
    for (int r = 0; r < world_; ++r) {
      if (r == rank_) continue;  // self slots stay null handles
      obs::Labels pl = rl;
      pl.emplace_back("peer", std::to_string(r));
      tx_frames_[static_cast<size_t>(r)] =
          registry_->GetCounter("nomad_dist_tx_frames_total", pl);
      tx_bytes_[static_cast<size_t>(r)] =
          registry_->GetCounter("nomad_dist_tx_bytes_total", pl);
      rx_frames_[static_cast<size_t>(r)] =
          registry_->GetCounter("nomad_dist_rx_frames_total", pl);
      rx_bytes_[static_cast<size_t>(r)] =
          registry_->GetCounter("nomad_dist_rx_bytes_total", pl);
      peer_alive_[static_cast<size_t>(r)] =
          registry_->GetGauge("nomad_dist_peer_alive", pl);
      peer_alive_[static_cast<size_t>(r)].Set(1);
    }
    recovery_generation_ =
        registry_->GetGauge("nomad_dist_recovery_generation", rl);
    barrier_epoch_ = registry_->GetGauge("nomad_dist_barrier_epoch", rl);
    updates_per_second_ =
        registry_->GetGauge("nomad_dist_updates_per_second", rl);
    transport_bytes_sent_ =
        registry_->GetGauge("nomad_dist_transport_bytes_sent", rl);
    transport_bytes_received_ =
        registry_->GetGauge("nomad_dist_transport_bytes_received", rl);
    transport_msgs_sent_ =
        registry_->GetGauge("nomad_dist_transport_messages_sent", rl);
    transport_msgs_received_ =
        registry_->GetGauge("nomad_dist_transport_messages_received", rl);
    router_->AttachMetrics(
        registry_->GetCounter("nomad_router_local_picks_total", rl),
        registry_->GetCounter("nomad_router_remote_picks_total", rl));
    pump_latency_ = registry_->GetHistogram(
        "nomad_dist_pump_round_latency_seconds", obs::kLatencyBounds, rl);
    own_timeline_.Bind(registry_);
    timeline_ = (rank_ == 0 && opt_.timeline != nullptr) ? opt_.timeline
                                                         : &own_timeline_;
    if (opt_.metrics_sample_ms > 0) {
      timeline_->StartSampler(opt_.metrics_sample_ms);
    }
  }

  // ---- the worker pool (the NomadSolver hot path + remote hand-off) ----

  void StartWorkers() {
    const bool auto_batch = opt_.token_batch_mode == TokenBatchMode::kAuto;
    const int fixed_batch =
        EffectiveMaxBatch(ds_.cols, world_ * p_, opt_.token_batch_size);
    const int max_batch =
        auto_batch
            ? EffectiveMaxBatch(ds_.cols, world_ * p_, opt_.max_token_batch)
            : fixed_batch;
    BatchControllerConfig controller_config;
    controller_config.max_batch = max_batch;
    controller_config.initial_batch = std::min(fixed_batch, max_batch);
    batch_stats_.resize(static_cast<size_t>(p_));

    const int retry_limit = std::max(0, o_.send_retry_limit);
    auto worker_fn = [this, auto_batch, fixed_batch, max_batch,
                      controller_config, retry_limit](int q) {
      if (numa_place_) {
        PinCurrentThreadToCpus(worker_cpus_[static_cast<size_t>(q)]);
      }
      // Seed by *global* worker id so no two workers of the job share a
      // stream.
      Rng rng(opt_.seed +
              7919ULL * static_cast<uint64_t>(rank_ * p_ + q + 1));
      BatchController controller(controller_config);
      // Single accumulation path behind the live scrape and this rank's
      // WorkerBatchStats (Finish() views these same registry cells).
      obs::WorkerObs wobs = obs::WorkerObs::Create(
          registry_, rank_, q,
          auto_batch ? controller.batch() : fixed_batch);
      std::vector<int32_t> tokens(static_cast<size_t>(max_batch));
      std::vector<int> dests(static_cast<size_t>(max_batch));
      std::vector<std::vector<int32_t>> outbound(static_cast<size_t>(p_));
      for (auto& buf : outbound) buf.reserve(static_cast<size_t>(max_batch));
      std::vector<uint8_t> frame;
      const TokenRouter::SizeProbe probe = [this](int d) {
        return queues_[static_cast<size_t>(d)]->SizeEstimate();
      };
      int idle_streak = 0;
      // Same hot-path latency discipline as the shared-memory solver: two
      // clock reads per round, gated on the bundle being live (it always
      // is here — the fallback registry keeps dist accounting on — but the
      // gate keeps the two loops textually parallel).
      using LatencyClock = std::chrono::steady_clock;
      const bool timed = wobs.enabled();
      LatencyClock::time_point wait_start =
          timed ? LatencyClock::now() : LatencyClock::time_point();
      while (!stop_.load(std::memory_order_relaxed)) {
        gate_.CheckIn();
        if (stop_.load(std::memory_order_relaxed)) break;
        const int want = auto_batch ? controller.batch() : fixed_batch;
        const size_t got = queues_[static_cast<size_t>(q)]->TryPopBatch(
            tokens.data(), static_cast<size_t>(want));
        if (got == 0) {
          if (idle_streak < 4) {
            std::this_thread::yield();
          } else {
            if (idle_streak == 4) {
              if (auto_batch) controller.NoteIdleBackoff();
              wobs.NoteBackoff(auto_batch ? controller.batch() : fixed_batch);
            }
            const int shift = std::min(idle_streak - 4, 7);
            std::this_thread::sleep_for(
                std::chrono::microseconds(1 << shift));
          }
          ++idle_streak;
          continue;
        }
        idle_streak = 0;
        LatencyClock::time_point work_start;
        if (timed) {
          work_start = LatencyClock::now();
          wobs.ObserveQueueWaitSeconds(
              std::chrono::duration<double>(work_start - wait_start).count());
        }
        {
          const size_t depth = queues_[static_cast<size_t>(q)]->SizeEstimate();
          if (auto_batch) {
            controller.Observe(static_cast<size_t>(want), got, depth);
          }
          // Sampling the batch after every controller interaction catches
          // each SetBatch transition, keeping the registry view
          // bit-identical to controller.Stats().
          wobs.ObserveRound(static_cast<size_t>(want), got, depth,
                            auto_batch ? controller.batch() : fixed_batch);
        }
        size_t local_n = 0;  // tokens staying on this rank, compacted
        for (size_t b = 0; b < got; ++b) {
          const int32_t j = tokens[b];
          int expected = -1;
          const bool acquired =
              owner_[static_cast<size_t>(j)].compare_exchange_strong(
                  expected, q, std::memory_order_acquire);
          NOMAD_CHECK(acquired) << "item " << j << " already owned by worker "
                                << expected << " on rank " << rank_;
          // Past the leased update budget the token only hops (conservation
          // must hold for the barrier) without being processed; the driver
          // is already requesting the barrier that re-leases or stops.
          const bool in_budget =
              total_updates_.load(std::memory_order_relaxed) <
              update_cap_.load(std::memory_order_relaxed);
          if (in_budget) {
            Real* hj = h_.Row(j);
            int32_t applied = 0;
            for (int g : worker_globals_[static_cast<size_t>(q)]) {
              int32_t n = 0;
              const ColumnShards::Entry* entries = shards_.ColEntries(g, j, &n);
              for (int32_t t = 0; t < n; ++t) {
                const ColumnShards::Entry& e = entries[t];
                kernel_.Apply(e.value, &counts_, e.csc_pos, w_.Row(e.row), hj);
              }
              applied += n;
            }
            if (applied > 0) {
              total_updates_.fetch_add(applied, std::memory_order_relaxed);
              wobs.NoteUpdates(applied);
            }
          }
          const bool remote =
              world_ > 1 && rng.NextDouble() < remote_prob_;
          int dest = -1;
          if (remote) {
            dest = static_cast<int>(
                rng.NextBelow(static_cast<uint64_t>(world_ - 1)));
            if (dest >= rank_) ++dest;
            // Route around latched-dead ranks. The mask is advisory (a
            // stale read only costs a retried send), and redrawing keeps
            // the pick uniform over the survivors.
            if (world_ <= 64) {
              const uint64_t mask = dead_mask_.load(std::memory_order_relaxed);
              for (int tries = 0; tries < 4 && ((mask >> dest) & 1); ++tries) {
                dest = static_cast<int>(
                    rng.NextBelow(static_cast<uint64_t>(world_ - 1)));
                if (dest >= rank_) ++dest;
              }
              if ((mask >> dest) & 1) dest = -1;  // no live remote drawn
            }
          }
          if (dest >= 0) {
            // Serialize h_j while still owning the token: the frame is the
            // hand-off, and nobody may touch the row mid-encode.
            const uint32_t v = version_[static_cast<size_t>(j)].fetch_add(
                                   1u, std::memory_order_relaxed) +
                               1u;
            EncodeFactorRow<Real>(MsgType::kToken, j, v, h_.Row(j), k_,
                                  &frame);
            owner_[static_cast<size_t>(j)].store(-1,
                                                 std::memory_order_release);
            // A lost frame would un-conserve the token and wedge the next
            // barrier, so sends retry transient (Unavailable) failures with
            // backoff; a peer that stays unreachable is the recovery
            // layer's problem and the token stays local meanwhile.
            Status sent;
            for (int attempt = 0;; ++attempt) {
              sent = transport_->Send(dest, frame);  // copy: retries reuse it
              if (sent.ok() || attempt >= retry_limit ||
                  sent.code() != StatusCode::kUnavailable) {
                break;
              }
              send_retries_.Inc();
              std::this_thread::sleep_for(std::chrono::microseconds(
                  50u << (attempt < 6 ? attempt : 6)));
            }
            if (sent.ok()) {
              tokens_sent_.Inc();
              tx_frames_[static_cast<size_t>(dest)].Inc();
              tx_bytes_[static_cast<size_t>(dest)].Inc(
                  static_cast<int64_t>(frame.size()));
            } else {
              tokens[local_n++] = j;
            }
          } else {
            owner_[static_cast<size_t>(j)].store(-1,
                                                 std::memory_order_release);
            tokens[local_n++] = j;
          }
        }
        if (local_n > 0) {
          router_->PickBatch(q, &rng, probe, static_cast<int>(local_n),
                             dests.data());
          for (size_t b = 0; b < local_n; ++b) {
            outbound[static_cast<size_t>(dests[b])].push_back(tokens[b]);
          }
          for (int d = 0; d < p_; ++d) {
            auto& buf = outbound[static_cast<size_t>(d)];
            if (buf.empty()) continue;
            queues_[static_cast<size_t>(d)]->PushBatch(buf.data(),
                                                       buf.size());
            buf.clear();
          }
          wobs.NotePushed(static_cast<int64_t>(local_n));
        }
        if (timed) {
          const LatencyClock::time_point round_end = LatencyClock::now();
          wobs.ObserveServiceSeconds(
              std::chrono::duration<double>(round_end - work_start).count() /
              static_cast<double>(got));
          wait_start = round_end;
        }
      }
      batch_stats_[static_cast<size_t>(q)] =
          wobs.Finish(auto_batch ? &controller : nullptr, fixed_batch);
    };
    workers_.reserve(static_cast<size_t>(p_));
    wall_.Restart();
    for (int q = 0; q < p_; ++q) workers_.emplace_back(worker_fn, q);
  }

  // ---- transport pump ----

  /// Drains every pending frame: tokens land in the local queues (or the
  /// barrier-held list), h/w rows are applied, control frames queue up for
  /// the protocol code. Returns an error on an undecodable frame. Each
  /// round is timed into the pump latency histogram — Pump runs on the
  /// driver/protocol path (every wait loop), never inside a worker's
  /// token loop, so the two clock reads cost nothing the paper's hot path
  /// would notice.
  Status Pump() {
    const auto t0 = std::chrono::steady_clock::now();
    const Status s = PumpFrames();
    pump_latency_.Observe(std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
    return s;
  }

  Status PumpFrames() {
    if (codec_ != nullptr) {
      // Push out (and keep retrying) any coalesced token batches: every
      // wait loop of the protocol pumps, so buffered tokens never stall a
      // barrier's conservation census. A flush that keeps failing is a
      // peer-liveness problem — the death watch owns those, so the status
      // is advisory here.
      (void)codec_->FlushAll();
    }
    std::vector<uint8_t> frame;
    int src = -1;
    while (transport_->TryReceive(&frame, &src)) {
      if (src >= 0 && src < world_) {
        rx_frames_[static_cast<size_t>(src)].Inc();
        rx_bytes_[static_cast<size_t>(src)].Inc(
            static_cast<int64_t>(frame.size()));
      }
      if (src >= 0 && src < world_ && dead_[static_cast<size_t>(src)]) {
        // Leftovers of a latched-dead rank (loopback inboxes outlive the
        // death; TCP can hand over buffered frames). They must not
        // resurrect tokens the recovery already re-granted.
        dead_frames_.Inc();
        continue;
      }
      auto type = PeekType(frame.data(), frame.size());
      if (!type.ok()) return type.status();
      switch (type.value()) {
        case MsgType::kToken:
        case MsgType::kHRow: {
          auto view = DecodeFactorRow<Real>(frame.data(), frame.size());
          if (!view.ok()) return view.status();
          const FactorRowView<Real>& row = view.value();
          if (row.k != k_ || row.id >= ds_.cols) {
            return Status::InvalidArgument(
                "factor row shape mismatch from rank " + std::to_string(src));
          }
          const size_t j = static_cast<size_t>(row.id);
          if (type.value() == MsgType::kToken) {
            const bool regrant = (row.flags & kFactorRowFlagRegrant) != 0;
            if (regrant) {
              // Authoritative re-materialization of a token lost with a
              // dead rank: accept unconditionally, version reset included.
              regrants_.Inc();
            } else if (row.version <=
                       version_[j].load(std::memory_order_relaxed)) {
              // Exclusive ownership makes the hop counter strictly
              // monotone, so a version that does not advance is a replayed
              // or duplicated frame (an injected fault, or a retried send
              // whose first copy did arrive). The live token is elsewhere;
              // discard this copy.
              stale_tokens_.Inc();
              break;
            }
            version_[j].store(row.version, std::memory_order_relaxed);
            std::copy(row.values, row.values + k_, h_.Row(row.id));
            tokens_received_.Inc();
            if (in_barrier_) {
              held_.push_back(row.id);
            } else {
              queues_[driver_rng_.NextBelow(static_cast<uint64_t>(p_))]
                  ->Push(row.id);
            }
          } else {
            // State broadcast, not a hand-off: the holder's copy is
            // canonical, and its version can equal ours (the token may not
            // have moved since the last barrier). A *stale* broadcast — a
            // replay from a barrier a death aborted — is skipped but still
            // counted, since the sender's kHRowDone count includes it.
            if (row.version >= version_[j].load(std::memory_order_relaxed)) {
              version_[j].store(row.version, std::memory_order_relaxed);
              std::copy(row.values, row.values + k_, h_.Row(row.id));
            }
            ++hrow_received_[static_cast<size_t>(src)];
            if (record_hrow_ids_) {
              seen_hrow_ids_[static_cast<size_t>(src)].push_back(row.id);
            }
          }
          break;
        }
        case MsgType::kWRow: {
          auto view = DecodeFactorRow<Real>(frame.data(), frame.size());
          if (!view.ok()) return view.status();
          const FactorRowView<Real>& row = view.value();
          if (row.k != k_ || row.id >= ds_.rows || rank_ != 0) {
            return Status::InvalidArgument(
                "unexpected w-row from rank " + std::to_string(src));
          }
          std::copy(row.values, row.values + k_, w_.Row(row.id));
          ++wrow_received_[static_cast<size_t>(src)];
          break;
        }
        case MsgType::kControl: {
          auto ctrl = DecodeControl(frame.data(), frame.size());
          if (!ctrl.ok()) return ctrl.status();
          // The wire codec cannot know the world size, so the rank field is
          // bounds-checked here — every barrier phase indexes world-sized
          // tables with it, and a desynced or hostile peer must produce a
          // clean error, not an out-of-bounds write.
          if (ctrl.value().rank < 0 || ctrl.value().rank >= world_) {
            return Status::InvalidArgument(
                "control frame claims rank " +
                std::to_string(ctrl.value().rank) + " outside world " +
                std::to_string(world_));
          }
          if (ctrl.value().kind == ControlKind::kLeaseSync) {
            // Recovery flush marker: per-channel FIFO makes it the exact
            // boundary between the sender's pre-death traffic and its
            // census re-broadcast, so the sender's h-row bookkeeping resets
            // *here* — not in a later phase, which would also wipe census
            // frames that arrived in the same drain as the marker.
            hrow_received_[static_cast<size_t>(src)] = 0;
            if (record_hrow_ids_) {
              seen_hrow_ids_[static_cast<size_t>(src)].clear();
            }
            for (auto it = ctrl_q_.begin(); it != ctrl_q_.end();) {
              if (it->kind == ControlKind::kHRowDone && it->rank == src) {
                it = ctrl_q_.erase(it);  // predates the marker: stale
              } else {
                ++it;
              }
            }
          }
          ctrl_q_.push_back(ctrl.value());
          break;
        }
        case MsgType::kBatch:
          // Bundles are unwrapped inside a negotiated CodecTransport; one
          // surfacing raw means the sender runs a batch codec and this
          // rank does not. The TCP hello prevents that; loopback trusts
          // the launch, so report the misconfiguration cleanly.
          return Status::InvalidArgument(
              "batch frame from rank " + std::to_string(src) +
              " without a negotiated wire codec");
        case MsgType::kHello:
          return Status::InvalidArgument("unexpected hello mid-run");
      }
    }
    return Status::OK();
  }

  /// Pops the first queued control frame of `kind`; other kinds stay put
  /// (e.g. an early next-epoch BarrierRequest waits for the outer loop).
  bool TakeCtrl(ControlKind kind, ControlFrame* out) {
    for (auto it = ctrl_q_.begin(); it != ctrl_q_.end(); ++it) {
      if (it->kind == kind) {
        *out = *it;
        ctrl_q_.erase(it);
        return true;
      }
    }
    return false;
  }

  // ---- liveness bookkeeping + fault-aware sends ----

  bool IsLive(int r) const { return dead_[static_cast<size_t>(r)] == 0; }

  int LiveCount() const {
    int live = 0;
    for (int r = 0; r < world_; ++r) live += IsLive(r) ? 1 : 0;
    return live;
  }

  std::vector<int> LiveRanks() const {
    std::vector<int> live;
    for (int r = 0; r < world_; ++r) {
      if (IsLive(r)) live.push_back(r);
    }
    return live;
  }

  void LatchDead(int r) {
    if (r < 0 || r >= world_ || r == rank_ || !IsLive(r)) return;
    dead_[static_cast<size_t>(r)] = 1;
    peer_alive_[static_cast<size_t>(r)].Set(0);
    if (world_ <= 64) {
      dead_mask_.fetch_or(1ull << r, std::memory_order_relaxed);
    }
    NOMAD_LOG(kWarning) << "dist_nomad rank " << rank_ << ": rank " << r
                        << " latched dead";
  }

  /// Reads the transport's liveness verdict for `r`, counting each dead
  /// verdict as a heartbeat miss — the scrapeable trail of the failure
  /// detector's decisions. Call sites either sit behind IsLive (so a
  /// latched death counts once, not once per poll) or abort the rank on
  /// the spot (the rank-0-is-dead checks).
  bool PeerDead(int r) {
    if (transport_->peer_status(r) != PeerStatus::kDead) return false;
    heartbeat_misses_.Inc();
    return true;
  }

  /// Sends with bounded retry + exponential backoff on transient
  /// (Unavailable) failures; any other error — and exhausted retries —
  /// surfaces to the caller.
  Status SendWithRetry(int dest, const std::vector<uint8_t>& buf) {
    const int limit = std::max(0, o_.send_retry_limit);
    Status s;
    for (int attempt = 0;; ++attempt) {
      s = transport_->Send(dest, buf);  // copy: retries reuse the bytes
      if (s.ok()) {
        tx_frames_[static_cast<size_t>(dest)].Inc();
        tx_bytes_[static_cast<size_t>(dest)].Inc(
            static_cast<int64_t>(buf.size()));
      }
      if (s.ok() || attempt >= limit ||
          s.code() != StatusCode::kUnavailable) {
        return s;
      }
      send_retries_.Inc();
      std::this_thread::sleep_for(
          std::chrono::microseconds(100u << (attempt < 6 ? attempt : 6)));
    }
  }

  Status SendCtrl(int dest, const ControlFrame& frame) {
    std::vector<uint8_t> buf;
    EncodeControl(frame, &buf);
    return SendWithRetry(dest, buf);
  }

  /// Broadcast to the live ranks only. A peer that stays Unavailable
  /// through all retries is presumed dying: rank 0 latches it dead on the
  /// spot (the heartbeat verdict confirms shortly) and reports Unavailable
  /// so the caller escalates to recovery; other ranks skip it and leave
  /// the declaration to rank 0 — unless the unreachable peer is rank 0
  /// itself, which is unrecoverable.
  Status BroadcastLive(const std::vector<uint8_t>& buf) {
    Status escalate = Status::OK();
    for (int r = 0; r < world_; ++r) {
      if (r == rank_ || !IsLive(r)) continue;
      Status s = SendWithRetry(r, buf);
      if (s.ok()) continue;
      if (s.code() != StatusCode::kUnavailable) return s;
      if (rank_ == 0) {
        LatchDead(r);
        death_pending_ = true;
        escalate = s;
      } else if (r == 0) {
        return Status::IOError(
            "rank " + std::to_string(rank_) +
            ": rank 0 is unreachable — unrecoverable, aborting");
      }
    }
    return escalate;
  }

  Status BroadcastCtrl(const ControlFrame& frame) {
    std::vector<uint8_t> buf;
    EncodeControl(frame, &buf);
    return BroadcastLive(buf);
  }

  /// The driver's death watch, polled in every wait loop. Rank 0 reads the
  /// transport's liveness verdicts and is the only authority that declares
  /// a death; everyone else learns through its kDeathNotice frames. While
  /// a death is pending recovery this keeps returning Unavailable, which
  /// unwinds whatever protocol phase is running back to DriveToCompletion.
  Status CheckDeaths() {
    if (world_ == 1) return Status::OK();
    if (rank_ == 0) {
      for (int r = 1; r < world_; ++r) {
        if (IsLive(r) && PeerDead(r)) {
          LatchDead(r);
          death_pending_ = true;
        }
      }
    } else {
      if (PeerDead(0)) {
        return Status::IOError(
            "rank " + std::to_string(rank_) +
            ": rank 0 is unreachable — unrecoverable, aborting");
      }
      ControlFrame notice;
      while (TakeCtrl(ControlKind::kDeathNotice, &notice)) {
        LatchDead(static_cast<int>(notice.count));
        notice_gen_ = std::max(notice_gen_, static_cast<int>(notice.epoch));
        notice_epoch_ = std::max<int64_t>(notice_epoch_, notice.held);
        death_pending_ = true;
      }
    }
    if (death_pending_) {
      return Status::Unavailable("rank death pending recovery");
    }
    return Status::OK();
  }

  /// Recovery-phase variant of the death watch: a death that generation
  /// `gen` does not cover restarts the recovery with the larger dead set,
  /// again via Unavailable.
  Status CheckRecoveryInterrupt(int gen) {
    if (rank_ == 0) {
      bool fresh = false;
      for (int r = 1; r < world_; ++r) {
        if (IsLive(r) && PeerDead(r)) {
          LatchDead(r);
          fresh = true;
        }
      }
      return fresh ? Status::Unavailable("death during recovery")
                   : Status::OK();
    }
    if (PeerDead(0)) {
      return Status::IOError(
          "rank " + std::to_string(rank_) +
          ": rank 0 is unreachable — unrecoverable, aborting");
    }
    bool newer = false;
    ControlFrame notice;
    while (TakeCtrl(ControlKind::kDeathNotice, &notice)) {
      LatchDead(static_cast<int>(notice.count));
      notice_epoch_ = std::max<int64_t>(notice_epoch_, notice.held);
      if (notice.epoch > notice_gen_) notice_gen_ = notice.epoch;
      if (notice.epoch > gen) newer = true;
    }
    return newer ? Status::Unavailable("newer recovery generation")
                 : Status::OK();
  }

  /// Drops every queued control frame of a protocol phase a death aborted;
  /// only recovery-plane kinds survive. Runs after the flush barrier, when
  /// everything the purged frames were part of has provably arrived.
  void PurgeStaleCtrl() {
    std::deque<ControlFrame> keep;
    for (const ControlFrame& f : ctrl_q_) {
      // kHRowDone survives too: a survivor that raced through the flush
      // barrier may already have finished its census re-broadcast, and its
      // done-frame must not be lost (pre-marker ones were erased when the
      // marker was pumped).
      if (f.kind == ControlKind::kDeathNotice ||
          f.kind == ControlKind::kLeaseSync ||
          f.kind == ControlKind::kTokenRegrant ||
          f.kind == ControlKind::kHRowDone) {
        keep.push_back(f);
      }
    }
    ctrl_q_.swap(keep);
  }

  /// The contiguous user-row ranges this rank owns: its static partition
  /// slice plus everything adopted from dead ranks. Evaluation and the
  /// final gather walk these instead of [row_begin_, row_end_).
  std::vector<std::pair<int32_t, int32_t>> OwnedRowRanges() const {
    std::vector<std::pair<int32_t, int32_t>> ranges;
    for (int g : my_globals_) {
      const int32_t b = partition_.Begin(g);
      const int32_t e = partition_.End(g);
      if (e <= b) continue;
      if (!ranges.empty() && ranges.back().second == b) {
        ranges.back().second = e;
      } else {
        ranges.emplace_back(b, e);
      }
    }
    return ranges;
  }

  static void Nap() {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  // ---- the driver ----

  Status DriveToCompletion() {
    bool finished = false;
    while (!finished) {
      const Status step = DriveStep(&finished);
      if (!step.ok()) {
        // A detected death unwinds whatever phase was running as
        // Unavailable; recovery re-establishes the invariants and the loop
        // goes on degraded. Every other error is fatal for this rank.
        if (death_pending_ && step.code() == StatusCode::kUnavailable &&
            world_ > 1) {
          NOMAD_RETURN_IF_ERROR(RunRecovery());
          continue;
        }
        return step;
      }
      if (!finished) Nap();
    }
    return Status::OK();
  }

  Status DriveStep(bool* finished) {
    NOMAD_RETURN_IF_ERROR(Pump());
    NOMAD_RETURN_IF_ERROR(CheckDeaths());
    const int64_t done = total_updates_.load(std::memory_order_relaxed);
    const bool out_of_time =
        opt_.max_seconds > 0 &&
        train_seconds_ + wall_.ElapsedSeconds() >= opt_.max_seconds;
    const bool out_of_budget =
        opt_.max_updates > 0 &&
        done >= update_cap_.load(std::memory_order_relaxed);
    if (rank_ == 0) {
      bool requested = done >= next_threshold_ || out_of_time ||
                       out_of_budget || barrier_after_recovery_;
      ControlFrame req;
      while (TakeCtrl(ControlKind::kBarrierRequest, &req)) {
        if (req.epoch >= epoch_) requested = true;  // stale ones drop
      }
      if (requested) {
        barrier_after_recovery_ = false;
        ControlFrame enter;
        enter.kind = ControlKind::kBarrierEnter;
        enter.rank = 0;
        enter.epoch = epoch_;
        NOMAD_RETURN_IF_ERROR(BroadcastCtrl(enter));
        NOMAD_RETURN_IF_ERROR(RunBarrier(finished));
      }
    } else {
      if ((done >= next_threshold_ || out_of_time || out_of_budget) &&
          !request_sent_) {
        ControlFrame req;
        req.kind = ControlKind::kBarrierRequest;
        req.rank = rank_;
        req.epoch = epoch_;
        NOMAD_RETURN_IF_ERROR(SendCtrl(0, req));
        request_sent_ = true;
      }
      ControlFrame enter;
      if (TakeCtrl(ControlKind::kBarrierEnter, &enter)) {
        // Rank 0's epoch is authoritative: a recovery can leave survivors
        // an epoch apart (some saw the aborted barrier's kResume, some had
        // it purged), so adopt rather than assert.
        epoch_ = enter.epoch;
        NOMAD_RETURN_IF_ERROR(RunBarrier(finished));
      }
    }
    return Status::OK();
  }

  /// One coordinated trace barrier; sets *finished when training is over
  /// (and the final gather has completed). See docs/ARCHITECTURE.md for
  /// the message flow.
  Status RunBarrier(bool* finished) {
    Quiesce();
    barrier_epoch_.Set(epoch_);

    // Phase 1 — conservation: rank 0 waits until every circulating token
    // is parked somewhere (sum of held counts == n ⇔ nothing in flight).
    NOMAD_RETURN_IF_ERROR(AwaitConservation());

    // Phase 2 — h-row exchange: every rank broadcasts the rows it holds,
    // so every rank evaluates against the full current H.
    NOMAD_RETURN_IF_ERROR(ExchangeHeldRows());

    // Phase 3 — evaluation + trace point. Rank 0 aggregates the partial
    // sums and tells everyone whether to continue.
    bool stop = false;
    NOMAD_RETURN_IF_ERROR(EvaluateAndDecide(&stop));

    if (!stop) {
      Rng rescatter(opt_.seed ^ (0xBEEF0000ULL + static_cast<uint64_t>(
                                                     epoch_)));
      for (int32_t j : held_) {
        queues_[rescatter.NextBelow(static_cast<uint64_t>(p_))]->Push(j);
      }
      held_.clear();
      in_barrier_ = false;
      request_sent_ = false;
      ++epoch_;
      next_threshold_ =
          total_updates_.load(std::memory_order_relaxed) +
          local_epoch_updates_;
      wall_.Restart();
      gate_.Resume();
      *finished = false;
      return Status::OK();
    }

    // Phase 4 — final gather: w-row partitions converge on rank 0, which
    // then releases everyone.
    NOMAD_RETURN_IF_ERROR(GatherFinalModel());
    *finished = true;
    return Status::OK();
  }

  /// Parks the workers and herds every local token into held_; idempotent,
  /// so an aborted barrier and the recovery that follows it compose.
  void Quiesce() {
    if (in_barrier_) return;
    gate_.Pause();
    train_seconds_ += wall_.ElapsedSeconds();
    in_barrier_ = true;
    for (int q = 0; q < p_; ++q) {
      while (auto token = queues_[static_cast<size_t>(q)]->TryPop()) {
        held_.push_back(*token);
      }
    }
  }

  Status AwaitConservation() {
    const int32_t n = ds_.cols;
    if (rank_ == 0) {
      std::vector<int64_t> rank_held(static_cast<size_t>(world_), -1);
      for (;;) {
        NOMAD_RETURN_IF_ERROR(Pump());
        NOMAD_RETURN_IF_ERROR(CheckDeaths());
        ControlFrame sync;
        while (TakeCtrl(ControlKind::kTraceSync, &sync)) {
          rank_held[static_cast<size_t>(sync.rank)] = sync.held;
        }
        rank_held[0] = static_cast<int64_t>(held_.size());
        int64_t sum = 0;
        bool all = true;
        for (int r = 0; r < world_; ++r) {
          if (!IsLive(r)) continue;  // a dead rank's tokens were re-granted
          const int64_t c = rank_held[static_cast<size_t>(r)];
          if (c < 0) {
            all = false;
            break;
          }
          sum += c;
        }
        if (all && sum == n) break;
        NOMAD_CHECK(sum <= n) << "token duplication: " << sum << " held of "
                              << n;
        Nap();
      }
      ControlFrame go;
      go.kind = ControlKind::kEvalStart;
      go.rank = 0;
      go.epoch = epoch_;
      return BroadcastCtrl(go);
    }
    int64_t reported = -1;
    for (;;) {
      NOMAD_RETURN_IF_ERROR(Pump());
      NOMAD_RETURN_IF_ERROR(CheckDeaths());
      if (static_cast<int64_t>(held_.size()) != reported) {
        reported = static_cast<int64_t>(held_.size());
        ControlFrame sync;
        sync.kind = ControlKind::kTraceSync;
        sync.rank = rank_;
        sync.epoch = epoch_;
        sync.held = reported;
        NOMAD_RETURN_IF_ERROR(SendCtrl(0, sync));
      }
      ControlFrame go;
      if (TakeCtrl(ControlKind::kEvalStart, &go)) return Status::OK();
      Nap();
    }
  }

  /// Broadcasts this rank's held h-rows to the live ranks and waits for
  /// everyone else's. `recovery_gen` < 0 is the normal barrier phase;
  /// >= 0 runs it as the recovery's re-own census (generation-aware
  /// interrupt checks, and rank 0 records the ids it sees).
  Status ExchangeHeldRows(int recovery_gen = -1) {
    if (world_ == 1) return Status::OK();
    std::vector<uint8_t> frame;
    for (int32_t j : held_) {
      EncodeFactorRow<Real>(
          MsgType::kHRow, j,
          version_[static_cast<size_t>(j)].load(std::memory_order_relaxed),
          h_.Row(j), k_, &frame);
      NOMAD_RETURN_IF_ERROR(BroadcastLive(frame));
    }
    ControlFrame done;
    done.kind = ControlKind::kHRowDone;
    done.rank = rank_;
    done.epoch = epoch_;
    done.count = static_cast<int64_t>(held_.size());
    NOMAD_RETURN_IF_ERROR(BroadcastCtrl(done));
    std::vector<int64_t> expected(static_cast<size_t>(world_), -1);
    expected[static_cast<size_t>(rank_)] = 0;
    for (;;) {
      NOMAD_RETURN_IF_ERROR(Pump());
      NOMAD_RETURN_IF_ERROR(recovery_gen >= 0
                                ? CheckRecoveryInterrupt(recovery_gen)
                                : CheckDeaths());
      ControlFrame f;
      while (TakeCtrl(ControlKind::kHRowDone, &f)) {
        expected[static_cast<size_t>(f.rank)] = f.count;
      }
      bool complete = true;
      for (int r = 0; r < world_; ++r) {
        if (!IsLive(r)) continue;  // nothing will come from a dead rank
        if (expected[static_cast<size_t>(r)] < 0 ||
            hrow_received_[static_cast<size_t>(r)] <
                expected[static_cast<size_t>(r)]) {
          complete = false;
          break;
        }
      }
      if (complete) {
        // This exchange's rows are all accounted for; reset for the next.
        hrow_received_.assign(static_cast<size_t>(world_), 0);
        return Status::OK();
      }
      Nap();
    }
  }

  Status EvaluateAndDecide(bool* stop) {
    double sq = 0.0;
    int64_t cnt = 0;
    for (const auto& range : OwnedRowRanges()) {
      for (int32_t i = range.first; i < range.second; ++i) {
        const int32_t nnz = ds_.test.RowNnz(i);
        const int32_t* cols = ds_.test.RowCols(i);
        const float* vals = ds_.test.RowVals(i);
        const Real* wi = w_.Row(i);
        for (int32_t t = 0; t < nnz; ++t) {
          const Real* hj = h_.Row(cols[t]);
          double pred = 0.0;
          for (int d = 0; d < k_; ++d) {
            pred += static_cast<double>(wi[d]) * static_cast<double>(hj[d]);
          }
          const double err = pred - static_cast<double>(vals[t]);
          sq += err * err;
          ++cnt;
        }
      }
    }
    const TransportStats tstats = transport_->stats();
    // The transport gauges are set ONLY here, from the same stats snapshot
    // the kPartialEval frame carries — the final scraped values and
    // rank_traffic's bytes are therefore bit-identical at every barrier.
    transport_bytes_sent_.Set(static_cast<double>(tstats.bytes_sent));
    transport_bytes_received_.Set(
        static_cast<double>(tstats.bytes_received));
    transport_msgs_sent_.Set(static_cast<double>(tstats.messages_sent));
    transport_msgs_received_.Set(
        static_cast<double>(tstats.messages_received));
    ControlFrame mine;
    mine.kind = ControlKind::kPartialEval;
    mine.rank = rank_;
    mine.epoch = epoch_;
    mine.sq_err = sq;
    mine.count = cnt;
    mine.updates = total_updates_.load(std::memory_order_relaxed);
    mine.seconds = train_seconds_;
    // Per-run registry deltas: rank_traffic is a view over the same
    // counters the scrape endpoint serves.
    mine.tokens_sent = tokens_sent_.Value() - tokens_sent0_;
    mine.tokens_received = tokens_received_.Value() - tokens_received0_;
    mine.bytes_sent = tstats.bytes_sent;
    mine.bytes_received = tstats.bytes_received;

    if (rank_ == 0) {
      std::vector<ControlFrame> evals(static_cast<size_t>(world_));
      std::vector<bool> have(static_cast<size_t>(world_), false);
      evals[0] = mine;
      have[0] = true;
      int missing = LiveCount() - 1;
      while (missing > 0) {
        NOMAD_RETURN_IF_ERROR(Pump());
        NOMAD_RETURN_IF_ERROR(CheckDeaths());
        ControlFrame f;
        while (TakeCtrl(ControlKind::kPartialEval, &f)) {
          if (!have[static_cast<size_t>(f.rank)]) {
            have[static_cast<size_t>(f.rank)] = true;
            --missing;
          }
          evals[static_cast<size_t>(f.rank)] = f;
        }
        if (missing > 0) Nap();
      }
      double sq_total = 0.0;
      int64_t cnt_total = 0;
      int64_t updates_total = 0;
      rank_traffic_.clear();
      for (int r = 0; r < world_; ++r) {
        if (!have[static_cast<size_t>(r)]) continue;  // dead rank: no report
        const ControlFrame& f = evals[static_cast<size_t>(r)];
        sq_total += f.sq_err;
        cnt_total += f.count;
        updates_total += f.updates;
        RankTrafficStats t;
        t.rank = f.rank;
        t.tokens_sent = f.tokens_sent;
        t.tokens_received = f.tokens_received;
        t.bytes_sent = f.bytes_sent;
        t.bytes_received = f.bytes_received;
        rank_traffic_.push_back(t);
      }
      const double rmse =
          cnt_total > 0 ? std::sqrt(sq_total / static_cast<double>(cnt_total))
                        : 0.0;
      global_updates_ = updates_total;
      global_seconds_ = train_seconds_;
      updates_per_second_.Set(
          global_seconds_ > 0.0
              ? static_cast<double>(global_updates_) / global_seconds_
              : 0.0);
      TracePoint pt;
      pt.seconds = train_seconds_;
      pt.updates = updates_total;
      pt.test_rmse = rmse;
      trace_.Add(pt);
      timeline_->RecordTrace(pt);
      const int64_t max_updates =
          opt_.max_updates > 0
              ? opt_.max_updates
              : (opt_.max_epochs > 0
                     ? opt_.max_epochs * std::max<int64_t>(
                                             ds_.train.nnz(), 1)
                     : -1);
      *stop = (max_updates > 0 && updates_total >= max_updates) ||
              (opt_.max_seconds > 0 && train_seconds_ >= opt_.max_seconds);
      ControlFrame resume;
      resume.kind = ControlKind::kResume;
      resume.rank = 0;
      resume.epoch = epoch_;
      resume.flag = *stop ? 1 : 0;
      resume.updates = updates_total;
      resume.sq_err = rmse;
      resume.seconds = train_seconds_;
      // With a hard max_updates budget, re-lease what remains of it across
      // the live ranks as absolute per-rank caps (kResume.held): each
      // rank's workers stop at their cap and request the next barrier, so
      // the job lands within a token batch of the budget instead of
      // overshooting by up to an epoch.
      const bool lease = opt_.max_updates > 0 && !*stop;
      const std::vector<int> live = LiveRanks();
      const int64_t remaining =
          lease ? std::max<int64_t>(opt_.max_updates - updates_total, 0) : 0;
      const int64_t nlive = static_cast<int64_t>(live.size());
      int64_t share_index = 0;
      for (int r : live) {
        resume.held = -1;
        if (lease) {
          const int64_t share =
              remaining / nlive + (share_index < remaining % nlive ? 1 : 0);
          resume.held = evals[static_cast<size_t>(r)].updates + share;
          ++share_index;
        }
        if (r == 0) {
          if (resume.held >= 0) {
            update_cap_.store(resume.held, std::memory_order_relaxed);
          }
          continue;
        }
        NOMAD_RETURN_IF_ERROR(SendCtrl(r, resume));
      }
      return Status::OK();
    }

    NOMAD_RETURN_IF_ERROR(SendCtrl(0, mine));
    // Own traffic row, so non-zero ranks still report themselves.
    rank_traffic_.clear();
    RankTrafficStats t;
    t.rank = rank_;
    t.tokens_sent = mine.tokens_sent;
    t.tokens_received = mine.tokens_received;
    t.bytes_sent = mine.bytes_sent;
    t.bytes_received = mine.bytes_received;
    rank_traffic_.push_back(t);
    for (;;) {
      NOMAD_RETURN_IF_ERROR(Pump());
      NOMAD_RETURN_IF_ERROR(CheckDeaths());
      ControlFrame f;
      if (TakeCtrl(ControlKind::kResume, &f)) {
        TracePoint pt;
        pt.seconds = f.seconds;
        pt.updates = f.updates;
        pt.test_rmse = f.sq_err;
        trace_.Add(pt);
        timeline_->RecordTrace(pt);
        global_updates_ = f.updates;
        global_seconds_ = f.seconds;
        updates_per_second_.Set(
            global_seconds_ > 0.0
                ? static_cast<double>(global_updates_) / global_seconds_
                : 0.0);
        if (f.held >= 0) {
          update_cap_.store(f.held, std::memory_order_relaxed);
        }
        *stop = f.flag != 0;
        return Status::OK();
      }
      Nap();
    }
  }

  Status GatherFinalModel() {
    if (world_ == 1) return Status::OK();
    if (rank_ == 0) {
      std::vector<int64_t> expected(static_cast<size_t>(world_), -1);
      expected[0] = 0;
      for (;;) {
        NOMAD_RETURN_IF_ERROR(Pump());
        // Training is over, so a rank dying here gets no recovery: latch
        // it, keep whatever w rows it managed to send (this rank's W holds
        // deterministic initial values for the rest), and move on.
        for (int r = 1; r < world_; ++r) {
          if (IsLive(r) && PeerDead(r)) {
            LatchDead(r);
          }
        }
        ControlFrame f;
        while (TakeCtrl(ControlKind::kWDone, &f)) {
          expected[static_cast<size_t>(f.rank)] = f.count;
        }
        bool complete = true;
        for (int r = 0; r < world_; ++r) {
          if (!IsLive(r)) continue;
          if (expected[static_cast<size_t>(r)] < 0 ||
              wrow_received_[static_cast<size_t>(r)] <
                  expected[static_cast<size_t>(r)]) {
            complete = false;
            break;
          }
        }
        if (complete) break;
        Nap();
      }
      ControlFrame bye;
      bye.kind = ControlKind::kShutdown;
      bye.rank = 0;
      bye.epoch = epoch_;
      return BroadcastCtrl(bye);
    }
    std::vector<uint8_t> frame;
    int64_t rows_sent = 0;
    for (const auto& range : OwnedRowRanges()) {
      for (int32_t i = range.first; i < range.second; ++i) {
        EncodeFactorRow<Real>(MsgType::kWRow, i, 0u, w_.Row(i), k_, &frame);
        NOMAD_RETURN_IF_ERROR(SendWithRetry(0, frame));
        ++rows_sent;
      }
    }
    ControlFrame done;
    done.kind = ControlKind::kWDone;
    done.rank = rank_;
    done.epoch = epoch_;
    done.count = rows_sent;
    NOMAD_RETURN_IF_ERROR(SendCtrl(0, done));
    for (;;) {
      NOMAD_RETURN_IF_ERROR(Pump());
      // Check for the shutdown frame BEFORE the liveness verdict: rank 0
      // closes its transport right after broadcasting kShutdown, so the
      // frame and the connection teardown race — TCP delivers the frame
      // first, but one Pump() can surface both at once.
      ControlFrame f;
      if (TakeCtrl(ControlKind::kShutdown, &f)) return Status::OK();
      if (PeerDead(0)) {
        return Status::IOError(
            "rank " + std::to_string(rank_) +
            ": rank 0 is unreachable — unrecoverable, aborting");
      }
      Nap();
    }
  }

  // ---- failure recovery ----

  /// Recovers from the latched deaths: detection → notice → channel flush
  /// → token re-own census → re-grant → partition adoption → resume
  /// (docs/ARCHITECTURE.md, "Failure model"). If another rank dies while
  /// recovery is running, the attempt unwinds (Unavailable) and restarts
  /// with the larger dead set — every step re-derives its state from a
  /// fresh census, so a half-finished attempt leaves nothing to undo.
  Status RunRecovery() {
    for (;;) {
      const Status attempt = RunRecoveryOnce();
      if (attempt.ok()) {
        death_pending_ = false;
        return Status::OK();
      }
      if (attempt.code() != StatusCode::kUnavailable) return attempt;
    }
  }

  Status RunRecoveryOnce() {
    // 0. Quiesce. Inbound tokens herd into held_ from here on; a barrier a
    //    death aborted mid-phase left the workers parked already.
    Quiesce();

    // 1. Announce. Rank 0 (the only death authority) broadcasts the full
    //    dead set under a fresh generation; re-announcing earlier deaths
    //    is idempotent (latching is) and makes restarts self-contained.
    //    The notice carries rank 0's barrier epoch — survivors whose
    //    kResume was lost with the abort re-sync from it.
    int gen = 0;
    if (rank_ == 0) {
      gen = ++recovery_gen_;
      ControlFrame notice;
      notice.kind = ControlKind::kDeathNotice;
      notice.rank = 0;
      notice.epoch = gen;
      notice.held = epoch_;
      for (int d = 0; d < world_; ++d) {
        if (IsLive(d)) continue;
        notice.count = d;
        NOMAD_RETURN_IF_ERROR(BroadcastCtrl(notice));
      }
    } else {
      gen = notice_gen_;
    }
    recovery_generation_.Set(gen);
    NOMAD_LOG(kWarning) << "dist_nomad rank " << rank_
                        << ": recovery generation " << gen << " ("
                        << (world_ - LiveCount()) << " dead, "
                        << LiveCount() << " live)";

    // 2. Flush. Every survivor broadcasts a kLeaseSync marker and waits
    //    for every live peer's marker of this generation. Frames are FIFO
    //    per (sender, receiver) channel, so once a peer's marker is here,
    //    everything it sent before pausing is too — the held-token census
    //    below is exact, with no acknowledgement protocol. Pump() resets a
    //    sender's h-row bookkeeping the moment its marker is processed, so
    //    census traffic from survivors racing ahead of this rank is
    //    counted, while pre-death leftovers are not. Recording starts
    //    before the marker goes out: a racing peer's census rows can
    //    arrive in the same drain as its marker.
    if (rank_ == 0) {
      record_hrow_ids_ = true;
      for (auto& ids : seen_hrow_ids_) ids.clear();
    }
    {
      ControlFrame marker;
      marker.kind = ControlKind::kLeaseSync;
      marker.rank = rank_;
      marker.epoch = gen;
      marker.held = static_cast<int64_t>(held_.size());
      NOMAD_RETURN_IF_ERROR(BroadcastCtrl(marker));
      std::vector<char> marked(static_cast<size_t>(world_), 0);
      marked[static_cast<size_t>(rank_)] = 1;
      for (;;) {
        NOMAD_RETURN_IF_ERROR(Pump());
        NOMAD_RETURN_IF_ERROR(CheckRecoveryInterrupt(gen));
        ControlFrame f;
        while (TakeCtrl(ControlKind::kLeaseSync, &f)) {
          if (f.epoch == gen) marked[static_cast<size_t>(f.rank)] = 1;
          // markers of older generations are leftovers of a superseded
          // attempt; drop them
        }
        bool all = true;
        for (int r = 0; r < world_; ++r) {
          if (IsLive(r) && !marked[static_cast<size_t>(r)]) {
            all = false;
            break;
          }
        }
        if (all) break;
        Nap();
      }
    }

    // 3. Reset the aborted protocol: everything those purged frames were
    //    part of has provably arrived. The h-row counters were already
    //    reset per sender by its marker — a wholesale reset here would
    //    wipe census traffic from survivors that raced ahead.
    PurgeStaleCtrl();
    request_sent_ = false;

    // 4. Re-own census: survivors re-broadcast their held h-rows (which
    //    also re-syncs H everywhere); rank 0 records the ids, so the set
    //    of tokens that died with the dead ranks — held there, or in
    //    flight to or from them — is exactly the complement.
    {
      const Status census = ExchangeHeldRows(gen);
      if (!census.ok()) {
        record_hrow_ids_ = false;
        return census;
      }
      record_hrow_ids_ = false;
    }

    // 5. Re-grant. Rank 0 re-materializes each missing token from its own
    //    (census-fresh) h-row copy, with a version reset far above any
    //    counter the dead rank could have produced and the wire-level
    //    regrant flag that makes receivers accept the reset. Distribution
    //    is round-robin over the live ranks; the per-channel FIFO makes
    //    the kTokenRegrant notice that follows the tokens double as their
    //    delivery receipt. A restart after a partial re-grant is safe: the
    //    next census sees the re-granted tokens as held and only fills
    //    what is still missing.
    if (rank_ == 0) {
      std::vector<char> seen(static_cast<size_t>(ds_.cols), 0);
      for (const auto& ids : seen_hrow_ids_) {
        for (int32_t id : ids) seen[static_cast<size_t>(id)] = 1;
      }
      for (int32_t j : held_) seen[static_cast<size_t>(j)] = 1;
      const std::vector<int> live = LiveRanks();
      std::vector<int64_t> granted(static_cast<size_t>(world_), 0);
      std::vector<uint8_t> fbuf;
      int64_t missing = 0;
      size_t slot = 0;
      for (int32_t j = 0; j < ds_.cols; ++j) {
        if (seen[static_cast<size_t>(j)]) continue;
        ++missing;
        const uint32_t v =
            version_[static_cast<size_t>(j)].load(std::memory_order_relaxed) +
            kRegrantVersionBump;
        version_[static_cast<size_t>(j)].store(v, std::memory_order_relaxed);
        const int dest = live[slot++ % live.size()];
        if (dest == rank_) {
          held_.push_back(j);
        } else {
          EncodeFactorRow<Real>(MsgType::kToken, j, v, h_.Row(j), k_, &fbuf,
                                kFactorRowFlagRegrant);
          NOMAD_RETURN_IF_ERROR(SendWithRetry(dest, fbuf));
        }
        ++granted[static_cast<size_t>(dest)];
      }
      NOMAD_LOG(kWarning) << "dist_nomad rank 0: re-granted " << missing
                          << " lost tokens across " << live.size()
                          << " survivors";
      ControlFrame receipt;
      receipt.kind = ControlKind::kTokenRegrant;
      receipt.rank = 0;
      receipt.epoch = gen;
      receipt.updates = missing;
      for (int r : live) {
        if (r == rank_) continue;
        receipt.count = granted[static_cast<size_t>(r)];
        NOMAD_RETURN_IF_ERROR(SendCtrl(r, receipt));
      }
    } else {
      for (;;) {
        NOMAD_RETURN_IF_ERROR(Pump());
        NOMAD_RETURN_IF_ERROR(CheckRecoveryInterrupt(gen));
        ControlFrame f;
        bool receipted = false;
        while (TakeCtrl(ControlKind::kTokenRegrant, &f)) {
          if (f.epoch == gen) receipted = true;
        }
        if (receipted) break;
        Nap();
      }
      epoch_ = static_cast<int>(std::max<int64_t>(epoch_, notice_epoch_));
    }

    // 6. Rebalance: adopt the dead ranks' global workers (deterministic,
    //    message-free — every rank computes the same assignment from the
    //    shared dead set) and re-derive the epoch pacing.
    RecomputeOwnership();

    // 7. Resume degraded. Tokens re-scatter deterministically; rank 0
    //    schedules an immediate barrier so the post-recovery RMSE lands in
    //    the trace (the visible recovery dip).
    Rng rescatter(opt_.seed ^ (0xFEED0000ULL + static_cast<uint64_t>(gen)));
    for (int32_t j : held_) {
      queues_[rescatter.NextBelow(static_cast<uint64_t>(p_))]->Push(j);
    }
    held_.clear();
    in_barrier_ = false;
    request_sent_ = false;
    next_threshold_ = total_updates_.load(std::memory_order_relaxed) +
                      local_epoch_updates_;
    if (rank_ == 0) barrier_after_recovery_ = true;
    wall_.Restart();
    gate_.Resume();
    return Status::OK();
  }

  /// Redistributes every dead rank's global workers over the survivors:
  /// global worker g of a dead rank goes to the (slot mod live)-th live
  /// rank, spread round-robin over that rank's local workers. Pure
  /// function of the shared dead set, so all ranks agree without a
  /// message. Workers must be parked (they read worker_globals_).
  void RecomputeOwnership() {
    for (int q = 0; q < p_; ++q) {
      worker_globals_[static_cast<size_t>(q)].assign(1, rank_ * p_ + q);
    }
    my_globals_.clear();
    for (int q = 0; q < p_; ++q) my_globals_.push_back(rank_ * p_ + q);
    const std::vector<int> live = LiveRanks();
    size_t slot = 0;
    for (int r = 0; r < world_; ++r) {
      if (IsLive(r)) continue;
      for (int q = 0; q < p_; ++q) {
        const int g = r * p_ + q;
        const int adopter = live[slot % live.size()];
        const int local_worker =
            static_cast<int>((slot / live.size()) % static_cast<size_t>(p_));
        ++slot;
        if (adopter != rank_) continue;
        worker_globals_[static_cast<size_t>(local_worker)].push_back(g);
        my_globals_.push_back(g);
      }
    }
    std::sort(my_globals_.begin(), my_globals_.end());
    local_epoch_updates_ = 0;
    for (int g : my_globals_) local_epoch_updates_ += shards_.WorkerNnz(g);
    local_epoch_updates_ = std::max<int64_t>(local_epoch_updates_, 1);
  }

  // ---- immutable run parameters ----
  const Dataset& ds_;
  const DistNomadOptions& o_;
  const TrainOptions& opt_;
  Transport* transport_;
  CodecTransport* codec_ = nullptr;  ///< Non-null iff wire_codec is on:
                                     ///< transport_ viewed as its codec
                                     ///< stack, for the driver's flushes.
  const int world_;
  const int rank_;
  const int p_;
  const int k_;
  const UpdateKernelT<Real>& kernel_;

  // ---- model + data layout ----
  FactorMatrixT<Real> w_;
  FactorMatrixT<Real> h_;
  UserPartition partition_;
  ColumnShards shards_;
  StepCounts counts_;
  int32_t row_begin_ = 0;
  int32_t row_end_ = 0;
  double remote_prob_ = 0.0;
  int64_t local_epoch_updates_ = 1;

  // ---- rank-local concurrency (the NomadSolver machinery) ----
  std::vector<std::unique_ptr<MpmcQueue<int32_t>>> queues_;
  std::unique_ptr<TokenRouter> router_;
  PauseGate gate_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> total_updates_{0};
  std::vector<std::thread> workers_;
  std::vector<WorkerBatchStats> batch_stats_;
  bool numa_place_ = false;
  std::vector<std::vector<int>> worker_cpus_;
  /// Latched-dead ranks as a bit mask for the workers' remote routing
  /// (advisory; a world over 64 ranks falls back to retry-only). Written
  /// by the driver, read by workers.
  std::atomic<uint64_t> dead_mask_{0};
  /// Absolute local update cap of the current budget lease (INT64_MAX
  /// when max_updates is unset). Written by the driver, read by workers.
  std::atomic<int64_t> update_cap_{std::numeric_limits<int64_t>::max()};
  /// worker_globals_[q]: the global workers whose shard entries local
  /// worker q processes — its own, plus any adopted from dead ranks.
  /// Mutated only while the workers are parked in the gate.
  std::vector<std::vector<int>> worker_globals_;

  // ---- driver/protocol state (driver thread only) ----
  Rng driver_rng_;
  // Hop versions are atomic for one reason: an injected duplicate/delayed
  // frame for token j can reach the driver's stale-discard check while a
  // local worker (the current owner) is bumping version_[j] for its own
  // hand-off. All accesses are relaxed — the counter only grows, and the
  // discard check only needs "≥ the value this rank already accepted",
  // which the driver itself wrote; ownership hand-offs synchronize
  // through the queues and the transport.
  std::vector<std::atomic<uint32_t>> version_;
  std::vector<std::atomic<int>> owner_;
  std::deque<ControlFrame> ctrl_q_;
  std::vector<int32_t> held_;
  std::vector<int64_t> hrow_received_;
  std::vector<int64_t> wrow_received_;
  bool in_barrier_ = false;
  bool request_sent_ = false;
  int epoch_ = 0;
  int64_t next_threshold_ = 0;
  std::vector<char> dead_;        ///< Latched death verdicts, by rank.
  bool death_pending_ = false;    ///< A latched death awaits recovery.
  int recovery_gen_ = 0;          ///< Rank 0: recovery generations issued.
  int notice_gen_ = 0;            ///< Others: newest kDeathNotice generation.
  int64_t notice_epoch_ = 0;      ///< Others: rank 0's epoch off the notice.
  bool record_hrow_ids_ = false;  ///< Rank 0 census: Pump logs h-row ids.
  std::vector<std::vector<int32_t>> seen_hrow_ids_;  ///< indexed by sender
  std::vector<int> my_globals_;   ///< Global workers this rank owns.
  bool barrier_after_recovery_ = false;
  Stopwatch wall_;
  double train_seconds_ = 0.0;
  Trace trace_;
  int64_t global_updates_ = 0;
  double global_seconds_ = 0.0;
  std::vector<RankTrafficStats> rank_traffic_;

  // ---- observability (obs/metrics.h; handles created in Setup) ----
  // TrainResult::rank_traffic is a view over these cells (kPartialEval
  // frames carry the per-run counter deltas), so the accounting must never
  // degrade: when the resolved registry is disabled (NOMAD_METRICS=off),
  // the run counts into this private registry instead — same cost as the
  // plain atomics it replaced, just nothing scrapes it.
  obs::MetricsRegistry fallback_registry_{true};
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter tokens_sent_;       ///< Tokens handed to remote ranks.
  obs::Counter tokens_received_;   ///< Tokens accepted from remote ranks.
  int64_t tokens_sent0_ = 0;       ///< Start values: the counters may be
  int64_t tokens_received0_ = 0;   ///< warm from an earlier run.
  obs::Counter send_retries_;      ///< Extra send attempts after Unavailable.
  obs::Counter heartbeat_misses_;  ///< Dead verdicts read off the transport.
  obs::Counter regrants_;          ///< Re-granted tokens accepted.
  obs::Counter stale_tokens_;      ///< Replayed/duplicate tokens discarded.
  obs::Counter dead_frames_;       ///< Frames from latched-dead ranks dropped.
  // Per-peer solver-payload traffic (what this rank's protocol put on the
  // wire, excluding transport framing and heartbeats), indexed by peer
  // rank; the self slot stays a null handle.
  std::vector<obs::Counter> tx_frames_, tx_bytes_, rx_frames_, rx_bytes_;
  std::vector<obs::Gauge> peer_alive_;   ///< 1 live, 0 latched dead.
  obs::Gauge recovery_generation_;       ///< Newest recovery generation run.
  obs::Gauge barrier_epoch_;             ///< Epoch of the last barrier.
  obs::Gauge updates_per_second_;        ///< Global rate at the last barrier.
  // Whole-transport cumulative stats (framing and heartbeats included),
  // snapshotted in EvaluateAndDecide from the same TransportStats read
  // that fills the kPartialEval frame — which keeps the scraped values and
  // rank_traffic's bytes bit-identical at every barrier.
  obs::Gauge transport_bytes_sent_, transport_bytes_received_;
  obs::Gauge transport_msgs_sent_, transport_msgs_received_;
  /// Pump-round latency (nomad_dist_pump_round_latency_seconds): how long
  /// one full drain of the transport takes — the dist layer's third
  /// hot-path histogram next to the worker service/wait pair.
  obs::Histogram pump_latency_;
  /// Run timeline (obs/timeseries.h): rank 0 records the global trace it
  /// coordinates; every other rank records the kResume echoes it applies.
  /// A caller-provided timeline (opt_.timeline) is honored on rank 0 only —
  /// in loopback worlds all ranks share one TrainOptions, and the live
  /// /timeseries view should carry the coordinator's rows, not an
  /// interleaving of every rank's.
  obs::RunTimeline own_timeline_;
  obs::RunTimeline* timeline_ = nullptr;
};

template <typename Real>
Result<TrainResult> TrainImpl(const Dataset& ds,
                              const DistNomadOptions& options,
                              Transport* transport) {
  auto schedule = MakeSchedule(options.train.schedule, options.train.alpha,
                               options.train.beta);
  if (!schedule.ok()) return schedule.status();
  auto loss = ResolveLoss(options.train.loss);
  if (!loss.ok()) return loss.status();

  // Degenerate problems have no tokens to circulate; evaluate the starting
  // point locally (every rank holds the full dataset) and skip the
  // protocol entirely — all ranks take this branch consistently.
  if (ds.train.nnz() == 0 || ds.cols == 0) {
    TrainResult result;
    result.solver_name = "dist_nomad";
    result.precision = options.train.precision;
    FactorMatrixT<Real> w;
    FactorMatrixT<Real> h;
    InitFactorsT<Real>(ds, options.train, &w, &h);
    TracePoint pt;
    pt.test_rmse = Rmse(ds.test, w, h);
    result.trace.Add(pt);
    obs::RunTimeline degenerate_timeline(nullptr);
    obs::RunTimeline* const timeline =
        options.train.timeline != nullptr && transport->rank() == 0
            ? options.train.timeline
            : &degenerate_timeline;
    timeline->RecordTrace(pt);
    result.timeline = timeline->Points();
    StoreTrainedFactors(std::move(w), std::move(h), &result);
    return result;
  }

  const UpdateKernelT<Real> kernel(*schedule.value(), loss.value().get(),
                                   options.train.lambda, options.train.rank);
  // With a wire codec negotiated, the rank sees its transport through a
  // CodecTransport stack — quantize/delta/batch on send, restore on
  // receive — so the protocol code above runs unchanged. The decorator
  // borrows the endpoint; Close() stays the caller's, as documented.
  std::unique_ptr<CodecTransport> codec;
  if (options.wire_codec.enabled()) {
    CodecOptions copts;
    copts.spec = options.wire_codec;
    copts.native = WirePrecisionOf<Real>();
    obs::MetricsRegistry* registry = obs::ResolveRegistry(options.train.metrics);
    copts.registry = registry->enabled() ? registry : nullptr;
    copts.metrics_rank = transport->rank();
    codec = std::make_unique<CodecTransport>(transport, copts);
  }
  RankRun<Real> run(ds, options, codec ? codec.get() : transport, kernel,
                    codec.get());
  return run.Run();
}

}  // namespace

Result<TrainResult> DistNomadSolver::Train(const Dataset& ds,
                                           const DistNomadOptions& options,
                                           Transport* transport) {
  if (transport == nullptr) {
    return Status::InvalidArgument("transport must not be null");
  }
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options.train));
  if (options.train.rank > kMaxWireK) {
    // Enforced here rather than at the first remote hand-off, where the
    // frame encoder would abort the whole job mid-training.
    return Status::InvalidArgument(
        "rank " + std::to_string(options.train.rank) +
        " exceeds the wire-format ceiling of " + std::to_string(kMaxWireK));
  }
  if (options.remote_token_fraction > 1.0) {
    return Status::InvalidArgument("remote_token_fraction must be <= 1");
  }
  if (options.wire_codec.bf16 && options.wire_codec.f16) {
    return Status::InvalidArgument(
        "wire_codec: bf16 and f16 quantization are mutually exclusive");
  }
  if (options.train.record_objective) {
    return Status::InvalidArgument(
        "record_objective is not supported by dist_nomad yet");
  }
  if (options.train.nomadic_rows) {
    // Footnote 2, same trick as the shared-memory solver: every rank
    // transposes consistently and swaps the factors back.
    const Dataset transposed = Transpose(ds);
    DistNomadOptions inner = options;
    inner.train.nomadic_rows = false;
    auto result = Train(transposed, inner, transport);
    if (!result.ok()) return result.status();
    TrainResult swapped = std::move(result).value();
    std::swap(swapped.w, swapped.h);
    return swapped;
  }
  return DispatchPrecision(options.train.precision, [&](auto zero) {
    return TrainImpl<decltype(zero)>(ds, options, transport);
  });
}

std::vector<Result<TrainResult>> TrainWorld(
    const Dataset& ds, const DistNomadOptions& options,
    std::vector<std::unique_ptr<Transport>>* endpoints) {
  const int world = static_cast<int>(endpoints->size());
  std::vector<Result<TrainResult>> results(
      static_cast<size_t>(world), Status::Internal("rank did not run"));
  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      DistNomadSolver solver;
      results[static_cast<size_t>(r)] = solver.Train(
          ds, options, (*endpoints)[static_cast<size_t>(r)].get());
    });
  }
  for (auto& t : ranks) t.join();
  return results;
}

std::vector<Result<TrainResult>> TrainLoopbackWorld(
    const Dataset& ds, const DistNomadOptions& options, int world) {
  auto fabric = MakeLoopbackFabric(world);
  return TrainWorld(ds, options, &fabric);
}

}  // namespace net
}  // namespace nomad
