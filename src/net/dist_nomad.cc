#include "net/dist_nomad.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/shard.h"
#include "eval/metrics.h"
#include "net/loopback_transport.h"
#include "net/wire_format.h"
#include "nomad/batch_controller.h"
#include "nomad/pause_gate.h"
#include "nomad/token_router.h"
#include "queue/mpmc_queue.h"
#include "sched/schedule.h"
#include "solver/sgd_kernel.h"
#include "util/logging.h"
#include "util/numa_topology.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace nomad {
namespace net {

namespace {

/// One rank's training run for one storage precision. The worker pool is
/// the NomadSolver hot path (batched MpmcQueue drains, TokenRouter,
/// optional BatchController and NUMA placement); what is new is the driver,
/// which pumps the transport and coordinates the cross-rank barrier
/// protocol of docs/ARCHITECTURE.md ("Distributed layer").
template <typename Real>
class RankRun {
 public:
  RankRun(const Dataset& ds, const DistNomadOptions& options,
          Transport* transport, const UpdateKernelT<Real>& kernel)
      : ds_(ds),
        o_(options),
        opt_(options.train),
        transport_(transport),
        world_(transport->world()),
        rank_(transport->rank()),
        p_(options.train.num_workers),
        k_(options.train.rank),
        kernel_(kernel),
        counts_(ds.train.nnz()),
        gate_(options.train.num_workers),
        driver_rng_(options.train.seed ^ 0xD157D157ULL),
        version_(static_cast<size_t>(ds.cols), 0),
        owner_(static_cast<size_t>(ds.cols)) {}

  Result<TrainResult> Run() {
    Setup();
    StartWorkers();
    const Status driver = DriveToCompletion();
    stop_.store(true, std::memory_order_relaxed);
    gate_.Resume();
    for (auto& t : workers_) t.join();
    NOMAD_RETURN_IF_ERROR(driver);

    TrainResult result;
    result.solver_name = "dist_nomad";
    result.precision = opt_.precision;
    result.trace = std::move(trace_);
    result.total_updates = global_updates_;
    result.total_seconds = global_seconds_;
    result.worker_batch = std::move(batch_stats_);
    result.rank_traffic = std::move(rank_traffic_);
    StoreTrainedFactors(std::move(w_), std::move(h_), &result);
    return result;
  }

 private:
  // ---- setup ----

  void Setup() {
    InitFactorsT<Real>(ds_, opt_, &w_, &h_);
    const int global_workers = world_ * p_;
    partition_ = opt_.partition_by_ratings
                     ? UserPartition::ByRatings(ds_.train, global_workers)
                     : UserPartition::ByRows(ds_.rows, global_workers);
    shards_ = ColumnShards::Build(ds_.train, partition_);
    row_begin_ = partition_.Begin(rank_ * p_);
    row_end_ = partition_.End(rank_ * p_ + p_ - 1);

    remote_prob_ = o_.remote_token_fraction;
    if (remote_prob_ < 0) {
      remote_prob_ = static_cast<double>(world_ - 1) /
                     static_cast<double>(world_);
    }
    if (world_ == 1) remote_prob_ = 0.0;

    // NUMA placement of this rank's workers and factor slices — the same
    // policy block as the shared-memory solver, scoped to the rank's rows.
    const NumaTopology topo = opt_.numa_policy == NumaPolicy::kOff
                                  ? NumaTopology::SingleNode()
                                  : NumaTopology::Detect();
    numa_place_ = opt_.numa_policy != NumaPolicy::kOff && topo.multi_node();
    if (numa_place_) {
      const std::vector<int> worker_node = topo.AssignWorkers(p_);
      worker_cpus_.resize(static_cast<size_t>(p_));
      std::vector<int> node_ids;
      for (const NumaNode& n : topo.nodes()) node_ids.push_back(n.id);
      for (int q = 0; q < p_; ++q) {
        worker_cpus_[static_cast<size_t>(q)] =
            topo.node(worker_node[static_cast<size_t>(q)]).cpus;
      }
      const size_t h_bytes = static_cast<size_t>(ds_.cols) *
                             static_cast<size_t>(h_.stride()) * sizeof(Real);
      if (opt_.numa_policy == NumaPolicy::kAuto) {
        for (int q = 0; q < p_; ++q) {
          const int32_t begin = partition_.Begin(rank_ * p_ + q);
          const int32_t end = partition_.End(rank_ * p_ + q);
          if (end <= begin) continue;
          BindMemoryToNode(
              w_.Row(begin),
              static_cast<size_t>(end - begin) *
                  static_cast<size_t>(w_.stride()) * sizeof(Real),
              topo.node(worker_node[static_cast<size_t>(q)]).id);
        }
        InterleaveMemory(h_.Row(0), h_bytes, node_ids);
      } else {  // NumaPolicy::kInterleave
        InterleaveMemory(w_.Row(0),
                         static_cast<size_t>(ds_.rows) *
                             static_cast<size_t>(w_.stride()) * sizeof(Real),
                         node_ids);
        InterleaveMemory(h_.Row(0), h_bytes, node_ids);
      }
      router_ = std::make_unique<TokenRouter>(opt_.routing, p_);
      router_->MakeNumaAware(worker_node);
    } else {
      router_ = std::make_unique<TokenRouter>(opt_.routing, p_);
    }

    queues_.reserve(static_cast<size_t>(p_));
    for (int q = 0; q < p_; ++q) {
      queues_.push_back(std::make_unique<MpmcQueue<int32_t>>());
    }
    // Deterministic global scatter: every rank draws the same sequence and
    // keeps only the tokens that land on its own workers, so the initial
    // distribution matches the single-process solver's scatter exactly.
    Rng scatter(opt_.seed ^ 0xA5A5A5A5ULL);
    for (int32_t j = 0; j < ds_.cols; ++j) {
      const int g =
          static_cast<int>(scatter.NextBelow(static_cast<uint64_t>(
              world_ * p_)));
      if (g / p_ == rank_) {
        queues_[static_cast<size_t>(g % p_)]->Push(j);
      }
    }
    for (auto& o : owner_) o.store(-1, std::memory_order_relaxed);

    local_epoch_updates_ = 0;
    for (int q = 0; q < p_; ++q) {
      local_epoch_updates_ += shards_.WorkerNnz(rank_ * p_ + q);
    }
    local_epoch_updates_ = std::max<int64_t>(local_epoch_updates_, 1);
    next_threshold_ = local_epoch_updates_;

    // Sized up front: a fast peer's h-row broadcast can land while this
    // rank is still in the conservation phase of the same barrier, so Pump
    // must be able to count it at any time.
    hrow_received_.assign(static_cast<size_t>(world_), 0);
    wrow_received_.assign(static_cast<size_t>(world_), 0);
  }

  // ---- the worker pool (the NomadSolver hot path + remote hand-off) ----

  void StartWorkers() {
    const bool auto_batch = opt_.token_batch_mode == TokenBatchMode::kAuto;
    const int fixed_batch =
        EffectiveMaxBatch(ds_.cols, world_ * p_, opt_.token_batch_size);
    const int max_batch =
        auto_batch
            ? EffectiveMaxBatch(ds_.cols, world_ * p_, opt_.max_token_batch)
            : fixed_batch;
    BatchControllerConfig controller_config;
    controller_config.max_batch = max_batch;
    controller_config.initial_batch = std::min(fixed_batch, max_batch);
    batch_stats_.resize(static_cast<size_t>(p_));

    auto worker_fn = [this, auto_batch, fixed_batch, max_batch,
                      controller_config](int q) {
      if (numa_place_) {
        PinCurrentThreadToCpus(worker_cpus_[static_cast<size_t>(q)]);
      }
      // Seed by *global* worker id so no two workers of the job share a
      // stream.
      Rng rng(opt_.seed +
              7919ULL * static_cast<uint64_t>(rank_ * p_ + q + 1));
      BatchController controller(controller_config);
      std::vector<int32_t> tokens(static_cast<size_t>(max_batch));
      std::vector<int> dests(static_cast<size_t>(max_batch));
      std::vector<std::vector<int32_t>> outbound(static_cast<size_t>(p_));
      for (auto& buf : outbound) buf.reserve(static_cast<size_t>(max_batch));
      std::vector<uint8_t> frame;
      const TokenRouter::SizeProbe probe = [this](int d) {
        return queues_[static_cast<size_t>(d)]->SizeEstimate();
      };
      int idle_streak = 0;
      while (!stop_.load(std::memory_order_relaxed)) {
        gate_.CheckIn();
        if (stop_.load(std::memory_order_relaxed)) break;
        const int want = auto_batch ? controller.batch() : fixed_batch;
        const size_t got = queues_[static_cast<size_t>(q)]->TryPopBatch(
            tokens.data(), static_cast<size_t>(want));
        if (got == 0) {
          if (idle_streak < 4) {
            std::this_thread::yield();
          } else {
            if (auto_batch && idle_streak == 4) controller.NoteIdleBackoff();
            const int shift = std::min(idle_streak - 4, 7);
            std::this_thread::sleep_for(
                std::chrono::microseconds(1 << shift));
          }
          ++idle_streak;
          continue;
        }
        idle_streak = 0;
        if (auto_batch) {
          controller.Observe(static_cast<size_t>(want), got,
                             queues_[static_cast<size_t>(q)]->SizeEstimate());
        }
        size_t local_n = 0;  // tokens staying on this rank, compacted
        for (size_t b = 0; b < got; ++b) {
          const int32_t j = tokens[b];
          int expected = -1;
          const bool acquired =
              owner_[static_cast<size_t>(j)].compare_exchange_strong(
                  expected, q, std::memory_order_acquire);
          NOMAD_CHECK(acquired) << "item " << j << " already owned by worker "
                                << expected << " on rank " << rank_;
          int32_t n = 0;
          const ColumnShards::Entry* entries =
              shards_.ColEntries(rank_ * p_ + q, j, &n);
          Real* hj = h_.Row(j);
          for (int32_t t = 0; t < n; ++t) {
            const ColumnShards::Entry& e = entries[t];
            kernel_.Apply(e.value, &counts_, e.csc_pos, w_.Row(e.row), hj);
          }
          if (n > 0) {
            total_updates_.fetch_add(n, std::memory_order_relaxed);
          }
          const bool remote =
              world_ > 1 && rng.NextDouble() < remote_prob_;
          if (remote) {
            // Serialize h_j while still owning the token: the frame is the
            // hand-off, and nobody may touch the row mid-encode.
            const uint32_t v = ++version_[static_cast<size_t>(j)];
            EncodeFactorRow<Real>(MsgType::kToken, j, v, h_.Row(j), k_,
                                  &frame);
            owner_[static_cast<size_t>(j)].store(-1,
                                                 std::memory_order_release);
            int dest = static_cast<int>(
                rng.NextBelow(static_cast<uint64_t>(world_ - 1)));
            if (dest >= rank_) ++dest;
            // A failed send would un-conserve the token and wedge the next
            // barrier; a dead transport mid-run is fatal by design (fault
            // tolerance is future work, see ROADMAP.md).
            const Status sent = transport_->Send(dest, std::move(frame));
            NOMAD_CHECK(sent.ok())
                << "rank " << rank_ << ": " << sent.ToString();
            tokens_sent_.fetch_add(1, std::memory_order_relaxed);
          } else {
            owner_[static_cast<size_t>(j)].store(-1,
                                                 std::memory_order_release);
            tokens[local_n++] = j;
          }
        }
        if (local_n > 0) {
          router_->PickBatch(q, &rng, probe, static_cast<int>(local_n),
                             dests.data());
          for (size_t b = 0; b < local_n; ++b) {
            outbound[static_cast<size_t>(dests[b])].push_back(tokens[b]);
          }
          for (int d = 0; d < p_; ++d) {
            auto& buf = outbound[static_cast<size_t>(d)];
            if (buf.empty()) continue;
            queues_[static_cast<size_t>(d)]->PushBatch(buf.data(),
                                                       buf.size());
            buf.clear();
          }
        }
      }
      if (auto_batch) {
        batch_stats_[static_cast<size_t>(q)] = controller.Stats(q);
      } else {
        WorkerBatchStats& s = batch_stats_[static_cast<size_t>(q)];
        s.worker = q;
        s.final_batch = s.min_batch_seen = s.max_batch_seen = fixed_batch;
        s.mean_batch = static_cast<double>(fixed_batch);
        s.trajectory.emplace_back(0, fixed_batch);
      }
    };
    workers_.reserve(static_cast<size_t>(p_));
    wall_.Restart();
    for (int q = 0; q < p_; ++q) workers_.emplace_back(worker_fn, q);
  }

  // ---- transport pump ----

  /// Drains every pending frame: tokens land in the local queues (or the
  /// barrier-held list), h/w rows are applied, control frames queue up for
  /// the protocol code. Returns an error on an undecodable frame.
  Status Pump() {
    std::vector<uint8_t> frame;
    int src = -1;
    while (transport_->TryReceive(&frame, &src)) {
      auto type = PeekType(frame.data(), frame.size());
      if (!type.ok()) return type.status();
      switch (type.value()) {
        case MsgType::kToken:
        case MsgType::kHRow: {
          auto view = DecodeFactorRow<Real>(frame.data(), frame.size());
          if (!view.ok()) return view.status();
          const FactorRowView<Real>& row = view.value();
          if (row.k != k_ || row.id >= ds_.cols) {
            return Status::InvalidArgument(
                "factor row shape mismatch from rank " + std::to_string(src));
          }
          const size_t j = static_cast<size_t>(row.id);
          if (type.value() == MsgType::kToken) {
            // Exclusive ownership makes the hop counter strictly monotone;
            // a replayed or reordered token is a protocol bug.
            NOMAD_CHECK(row.version > version_[j])
                << "token " << row.id << " arrived with stale version";
            version_[j] = row.version;
            std::copy(row.values, row.values + k_, h_.Row(row.id));
            tokens_received_.fetch_add(1, std::memory_order_relaxed);
            if (in_barrier_) {
              held_.push_back(row.id);
            } else {
              queues_[driver_rng_.NextBelow(static_cast<uint64_t>(p_))]
                  ->Push(row.id);
            }
          } else {
            // State broadcast, not a hand-off: the holder's copy is
            // canonical, and its version can equal ours (the token may not
            // have moved since the last barrier).
            NOMAD_CHECK(row.version >= version_[j])
                << "h-row " << row.id << " arrived with stale version";
            version_[j] = row.version;
            std::copy(row.values, row.values + k_, h_.Row(row.id));
            ++hrow_received_[static_cast<size_t>(src)];
          }
          break;
        }
        case MsgType::kWRow: {
          auto view = DecodeFactorRow<Real>(frame.data(), frame.size());
          if (!view.ok()) return view.status();
          const FactorRowView<Real>& row = view.value();
          if (row.k != k_ || row.id >= ds_.rows || rank_ != 0) {
            return Status::InvalidArgument(
                "unexpected w-row from rank " + std::to_string(src));
          }
          std::copy(row.values, row.values + k_, w_.Row(row.id));
          ++wrow_received_[static_cast<size_t>(src)];
          break;
        }
        case MsgType::kControl: {
          auto ctrl = DecodeControl(frame.data(), frame.size());
          if (!ctrl.ok()) return ctrl.status();
          // The wire codec cannot know the world size, so the rank field is
          // bounds-checked here — every barrier phase indexes world-sized
          // tables with it, and a desynced or hostile peer must produce a
          // clean error, not an out-of-bounds write.
          if (ctrl.value().rank < 0 || ctrl.value().rank >= world_) {
            return Status::InvalidArgument(
                "control frame claims rank " +
                std::to_string(ctrl.value().rank) + " outside world " +
                std::to_string(world_));
          }
          ctrl_q_.push_back(ctrl.value());
          break;
        }
        case MsgType::kHello:
          return Status::InvalidArgument("unexpected hello mid-run");
      }
    }
    return Status::OK();
  }

  /// Pops the first queued control frame of `kind`; other kinds stay put
  /// (e.g. an early next-epoch BarrierRequest waits for the outer loop).
  bool TakeCtrl(ControlKind kind, ControlFrame* out) {
    for (auto it = ctrl_q_.begin(); it != ctrl_q_.end(); ++it) {
      if (it->kind == kind) {
        *out = *it;
        ctrl_q_.erase(it);
        return true;
      }
    }
    return false;
  }

  Status SendCtrl(int dest, const ControlFrame& frame) {
    std::vector<uint8_t> buf;
    EncodeControl(frame, &buf);
    return transport_->Send(dest, std::move(buf));
  }

  Status BroadcastCtrl(const ControlFrame& frame) {
    std::vector<uint8_t> buf;
    EncodeControl(frame, &buf);
    return transport_->Broadcast(buf);
  }

  static void Nap() {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  // ---- the driver ----

  Status DriveToCompletion() {
    bool finished = false;
    while (!finished) {
      NOMAD_RETURN_IF_ERROR(Pump());
      const int64_t done = total_updates_.load(std::memory_order_relaxed);
      const bool out_of_time =
          opt_.max_seconds > 0 &&
          train_seconds_ + wall_.ElapsedSeconds() >= opt_.max_seconds;
      if (rank_ == 0) {
        bool requested = done >= next_threshold_ || out_of_time;
        ControlFrame req;
        while (TakeCtrl(ControlKind::kBarrierRequest, &req)) {
          if (req.epoch >= epoch_) requested = true;  // stale ones drop
        }
        if (requested) {
          ControlFrame enter;
          enter.kind = ControlKind::kBarrierEnter;
          enter.rank = 0;
          enter.epoch = epoch_;
          NOMAD_RETURN_IF_ERROR(BroadcastCtrl(enter));
          NOMAD_RETURN_IF_ERROR(RunBarrier(&finished));
        }
      } else {
        if ((done >= next_threshold_ || out_of_time) && !request_sent_) {
          ControlFrame req;
          req.kind = ControlKind::kBarrierRequest;
          req.rank = rank_;
          req.epoch = epoch_;
          NOMAD_RETURN_IF_ERROR(SendCtrl(0, req));
          request_sent_ = true;
        }
        ControlFrame enter;
        if (TakeCtrl(ControlKind::kBarrierEnter, &enter)) {
          NOMAD_CHECK(enter.epoch == epoch_)
              << "barrier epoch skew: got " << enter.epoch << ", at "
              << epoch_;
          NOMAD_RETURN_IF_ERROR(RunBarrier(&finished));
        }
      }
      if (!finished) Nap();
    }
    return Status::OK();
  }

  /// One coordinated trace barrier; sets *finished when training is over
  /// (and the final gather has completed). See docs/ARCHITECTURE.md for
  /// the message flow.
  Status RunBarrier(bool* finished) {
    gate_.Pause();
    train_seconds_ += wall_.ElapsedSeconds();
    in_barrier_ = true;
    for (int q = 0; q < p_; ++q) {
      while (auto token = queues_[static_cast<size_t>(q)]->TryPop()) {
        held_.push_back(*token);
      }
    }

    // Phase 1 — conservation: rank 0 waits until every circulating token
    // is parked somewhere (sum of held counts == n ⇔ nothing in flight).
    NOMAD_RETURN_IF_ERROR(AwaitConservation());

    // Phase 2 — h-row exchange: every rank broadcasts the rows it holds,
    // so every rank evaluates against the full current H.
    NOMAD_RETURN_IF_ERROR(ExchangeHeldRows());

    // Phase 3 — evaluation + trace point. Rank 0 aggregates the partial
    // sums and tells everyone whether to continue.
    bool stop = false;
    NOMAD_RETURN_IF_ERROR(EvaluateAndDecide(&stop));

    if (!stop) {
      Rng rescatter(opt_.seed ^ (0xBEEF0000ULL + static_cast<uint64_t>(
                                                     epoch_)));
      for (int32_t j : held_) {
        queues_[rescatter.NextBelow(static_cast<uint64_t>(p_))]->Push(j);
      }
      held_.clear();
      in_barrier_ = false;
      request_sent_ = false;
      ++epoch_;
      next_threshold_ =
          total_updates_.load(std::memory_order_relaxed) +
          local_epoch_updates_;
      wall_.Restart();
      gate_.Resume();
      *finished = false;
      return Status::OK();
    }

    // Phase 4 — final gather: w-row partitions converge on rank 0, which
    // then releases everyone.
    NOMAD_RETURN_IF_ERROR(GatherFinalModel());
    *finished = true;
    return Status::OK();
  }

  Status AwaitConservation() {
    const int32_t n = ds_.cols;
    if (rank_ == 0) {
      std::vector<int64_t> rank_held(static_cast<size_t>(world_), -1);
      for (;;) {
        NOMAD_RETURN_IF_ERROR(Pump());
        ControlFrame sync;
        while (TakeCtrl(ControlKind::kTraceSync, &sync)) {
          rank_held[static_cast<size_t>(sync.rank)] = sync.held;
        }
        rank_held[0] = static_cast<int64_t>(held_.size());
        int64_t sum = 0;
        bool all = true;
        for (int64_t c : rank_held) {
          if (c < 0) {
            all = false;
            break;
          }
          sum += c;
        }
        if (all && sum == n) break;
        NOMAD_CHECK(sum <= n) << "token duplication: " << sum << " held of "
                              << n;
        Nap();
      }
      ControlFrame go;
      go.kind = ControlKind::kEvalStart;
      go.rank = 0;
      go.epoch = epoch_;
      return BroadcastCtrl(go);
    }
    int64_t reported = -1;
    for (;;) {
      NOMAD_RETURN_IF_ERROR(Pump());
      if (static_cast<int64_t>(held_.size()) != reported) {
        reported = static_cast<int64_t>(held_.size());
        ControlFrame sync;
        sync.kind = ControlKind::kTraceSync;
        sync.rank = rank_;
        sync.epoch = epoch_;
        sync.held = reported;
        NOMAD_RETURN_IF_ERROR(SendCtrl(0, sync));
      }
      ControlFrame go;
      if (TakeCtrl(ControlKind::kEvalStart, &go)) return Status::OK();
      Nap();
    }
  }

  Status ExchangeHeldRows() {
    if (world_ == 1) return Status::OK();
    std::vector<uint8_t> frame;
    for (int32_t j : held_) {
      EncodeFactorRow<Real>(MsgType::kHRow, j,
                            version_[static_cast<size_t>(j)], h_.Row(j), k_,
                            &frame);
      NOMAD_RETURN_IF_ERROR(transport_->Broadcast(frame));
    }
    ControlFrame done;
    done.kind = ControlKind::kHRowDone;
    done.rank = rank_;
    done.epoch = epoch_;
    done.count = static_cast<int64_t>(held_.size());
    NOMAD_RETURN_IF_ERROR(BroadcastCtrl(done));
    std::vector<int64_t> expected(static_cast<size_t>(world_), -1);
    expected[static_cast<size_t>(rank_)] = 0;
    for (;;) {
      NOMAD_RETURN_IF_ERROR(Pump());
      ControlFrame f;
      while (TakeCtrl(ControlKind::kHRowDone, &f)) {
        expected[static_cast<size_t>(f.rank)] = f.count;
      }
      bool complete = true;
      for (int r = 0; r < world_; ++r) {
        if (expected[static_cast<size_t>(r)] < 0 ||
            hrow_received_[static_cast<size_t>(r)] <
                expected[static_cast<size_t>(r)]) {
          complete = false;
          break;
        }
      }
      if (complete) {
        // This barrier's rows are all accounted for; reset for the next.
        hrow_received_.assign(static_cast<size_t>(world_), 0);
        return Status::OK();
      }
      Nap();
    }
  }

  Status EvaluateAndDecide(bool* stop) {
    double sq = 0.0;
    int64_t cnt = 0;
    for (int32_t i = row_begin_; i < row_end_; ++i) {
      const int32_t nnz = ds_.test.RowNnz(i);
      const int32_t* cols = ds_.test.RowCols(i);
      const float* vals = ds_.test.RowVals(i);
      const Real* wi = w_.Row(i);
      for (int32_t t = 0; t < nnz; ++t) {
        const Real* hj = h_.Row(cols[t]);
        double pred = 0.0;
        for (int d = 0; d < k_; ++d) {
          pred += static_cast<double>(wi[d]) * static_cast<double>(hj[d]);
        }
        const double err = pred - static_cast<double>(vals[t]);
        sq += err * err;
        ++cnt;
      }
    }
    const TransportStats tstats = transport_->stats();
    ControlFrame mine;
    mine.kind = ControlKind::kPartialEval;
    mine.rank = rank_;
    mine.epoch = epoch_;
    mine.sq_err = sq;
    mine.count = cnt;
    mine.updates = total_updates_.load(std::memory_order_relaxed);
    mine.seconds = train_seconds_;
    mine.tokens_sent = tokens_sent_.load(std::memory_order_relaxed);
    mine.tokens_received = tokens_received_.load(std::memory_order_relaxed);
    mine.bytes_sent = tstats.bytes_sent;
    mine.bytes_received = tstats.bytes_received;

    if (rank_ == 0) {
      std::vector<ControlFrame> evals(static_cast<size_t>(world_));
      std::vector<bool> have(static_cast<size_t>(world_), false);
      evals[0] = mine;
      have[0] = true;
      int missing = world_ - 1;
      while (missing > 0) {
        NOMAD_RETURN_IF_ERROR(Pump());
        ControlFrame f;
        while (TakeCtrl(ControlKind::kPartialEval, &f)) {
          if (!have[static_cast<size_t>(f.rank)]) {
            have[static_cast<size_t>(f.rank)] = true;
            --missing;
          }
          evals[static_cast<size_t>(f.rank)] = f;
        }
        if (missing > 0) Nap();
      }
      double sq_total = 0.0;
      int64_t cnt_total = 0;
      int64_t updates_total = 0;
      rank_traffic_.clear();
      for (const ControlFrame& f : evals) {
        sq_total += f.sq_err;
        cnt_total += f.count;
        updates_total += f.updates;
        RankTrafficStats t;
        t.rank = f.rank;
        t.tokens_sent = f.tokens_sent;
        t.tokens_received = f.tokens_received;
        t.bytes_sent = f.bytes_sent;
        t.bytes_received = f.bytes_received;
        rank_traffic_.push_back(t);
      }
      const double rmse =
          cnt_total > 0 ? std::sqrt(sq_total / static_cast<double>(cnt_total))
                        : 0.0;
      global_updates_ = updates_total;
      global_seconds_ = train_seconds_;
      TracePoint pt;
      pt.seconds = train_seconds_;
      pt.updates = updates_total;
      pt.test_rmse = rmse;
      trace_.Add(pt);
      const int64_t max_updates =
          opt_.max_updates > 0
              ? opt_.max_updates
              : (opt_.max_epochs > 0
                     ? opt_.max_epochs * std::max<int64_t>(
                                             ds_.train.nnz(), 1)
                     : -1);
      *stop = (max_updates > 0 && updates_total >= max_updates) ||
              (opt_.max_seconds > 0 && train_seconds_ >= opt_.max_seconds);
      ControlFrame resume;
      resume.kind = ControlKind::kResume;
      resume.rank = 0;
      resume.epoch = epoch_;
      resume.flag = *stop ? 1 : 0;
      resume.updates = updates_total;
      resume.sq_err = rmse;
      resume.seconds = train_seconds_;
      return BroadcastCtrl(resume);
    }

    NOMAD_RETURN_IF_ERROR(SendCtrl(0, mine));
    // Own traffic row, so non-zero ranks still report themselves.
    rank_traffic_.clear();
    RankTrafficStats t;
    t.rank = rank_;
    t.tokens_sent = mine.tokens_sent;
    t.tokens_received = mine.tokens_received;
    t.bytes_sent = mine.bytes_sent;
    t.bytes_received = mine.bytes_received;
    rank_traffic_.push_back(t);
    for (;;) {
      NOMAD_RETURN_IF_ERROR(Pump());
      ControlFrame f;
      if (TakeCtrl(ControlKind::kResume, &f)) {
        TracePoint pt;
        pt.seconds = f.seconds;
        pt.updates = f.updates;
        pt.test_rmse = f.sq_err;
        trace_.Add(pt);
        global_updates_ = f.updates;
        global_seconds_ = f.seconds;
        *stop = f.flag != 0;
        return Status::OK();
      }
      Nap();
    }
  }

  Status GatherFinalModel() {
    if (world_ == 1) return Status::OK();
    if (rank_ == 0) {
      std::vector<int64_t> expected(static_cast<size_t>(world_), -1);
      expected[0] = 0;
      for (;;) {
        NOMAD_RETURN_IF_ERROR(Pump());
        ControlFrame f;
        while (TakeCtrl(ControlKind::kWDone, &f)) {
          expected[static_cast<size_t>(f.rank)] = f.count;
        }
        bool complete = true;
        for (int r = 0; r < world_; ++r) {
          if (expected[static_cast<size_t>(r)] < 0 ||
              wrow_received_[static_cast<size_t>(r)] <
                  expected[static_cast<size_t>(r)]) {
            complete = false;
            break;
          }
        }
        if (complete) break;
        Nap();
      }
      ControlFrame bye;
      bye.kind = ControlKind::kShutdown;
      bye.rank = 0;
      bye.epoch = epoch_;
      return BroadcastCtrl(bye);
    }
    std::vector<uint8_t> frame;
    for (int32_t i = row_begin_; i < row_end_; ++i) {
      EncodeFactorRow<Real>(MsgType::kWRow, i, 0u, w_.Row(i), k_, &frame);
      NOMAD_RETURN_IF_ERROR(transport_->Send(0, std::move(frame)));
    }
    ControlFrame done;
    done.kind = ControlKind::kWDone;
    done.rank = rank_;
    done.epoch = epoch_;
    done.count = row_end_ - row_begin_;
    NOMAD_RETURN_IF_ERROR(SendCtrl(0, done));
    for (;;) {
      NOMAD_RETURN_IF_ERROR(Pump());
      ControlFrame f;
      if (TakeCtrl(ControlKind::kShutdown, &f)) return Status::OK();
      Nap();
    }
  }

  // ---- immutable run parameters ----
  const Dataset& ds_;
  const DistNomadOptions& o_;
  const TrainOptions& opt_;
  Transport* transport_;
  const int world_;
  const int rank_;
  const int p_;
  const int k_;
  const UpdateKernelT<Real>& kernel_;

  // ---- model + data layout ----
  FactorMatrixT<Real> w_;
  FactorMatrixT<Real> h_;
  UserPartition partition_;
  ColumnShards shards_;
  StepCounts counts_;
  int32_t row_begin_ = 0;
  int32_t row_end_ = 0;
  double remote_prob_ = 0.0;
  int64_t local_epoch_updates_ = 1;

  // ---- rank-local concurrency (the NomadSolver machinery) ----
  std::vector<std::unique_ptr<MpmcQueue<int32_t>>> queues_;
  std::unique_ptr<TokenRouter> router_;
  PauseGate gate_;
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> total_updates_{0};
  std::atomic<int64_t> tokens_sent_{0};
  std::atomic<int64_t> tokens_received_{0};
  std::vector<std::thread> workers_;
  std::vector<WorkerBatchStats> batch_stats_;
  bool numa_place_ = false;
  std::vector<std::vector<int>> worker_cpus_;

  // ---- driver/protocol state (driver thread only) ----
  Rng driver_rng_;
  std::vector<uint32_t> version_;
  std::vector<std::atomic<int>> owner_;
  std::deque<ControlFrame> ctrl_q_;
  std::vector<int32_t> held_;
  std::vector<int64_t> hrow_received_;
  std::vector<int64_t> wrow_received_;
  bool in_barrier_ = false;
  bool request_sent_ = false;
  int epoch_ = 0;
  int64_t next_threshold_ = 0;
  Stopwatch wall_;
  double train_seconds_ = 0.0;
  Trace trace_;
  int64_t global_updates_ = 0;
  double global_seconds_ = 0.0;
  std::vector<RankTrafficStats> rank_traffic_;
};

template <typename Real>
Result<TrainResult> TrainImpl(const Dataset& ds,
                              const DistNomadOptions& options,
                              Transport* transport) {
  auto schedule = MakeSchedule(options.train.schedule, options.train.alpha,
                               options.train.beta);
  if (!schedule.ok()) return schedule.status();
  auto loss = ResolveLoss(options.train.loss);
  if (!loss.ok()) return loss.status();

  // Degenerate problems have no tokens to circulate; evaluate the starting
  // point locally (every rank holds the full dataset) and skip the
  // protocol entirely — all ranks take this branch consistently.
  if (ds.train.nnz() == 0 || ds.cols == 0) {
    TrainResult result;
    result.solver_name = "dist_nomad";
    result.precision = options.train.precision;
    FactorMatrixT<Real> w;
    FactorMatrixT<Real> h;
    InitFactorsT<Real>(ds, options.train, &w, &h);
    TracePoint pt;
    pt.test_rmse = Rmse(ds.test, w, h);
    result.trace.Add(pt);
    StoreTrainedFactors(std::move(w), std::move(h), &result);
    return result;
  }

  const UpdateKernelT<Real> kernel(*schedule.value(), loss.value().get(),
                                   options.train.lambda, options.train.rank);
  RankRun<Real> run(ds, options, transport, kernel);
  return run.Run();
}

}  // namespace

Result<TrainResult> DistNomadSolver::Train(const Dataset& ds,
                                           const DistNomadOptions& options,
                                           Transport* transport) {
  if (transport == nullptr) {
    return Status::InvalidArgument("transport must not be null");
  }
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options.train));
  if (options.train.rank > kMaxWireK) {
    // Enforced here rather than at the first remote hand-off, where the
    // frame encoder would abort the whole job mid-training.
    return Status::InvalidArgument(
        "rank " + std::to_string(options.train.rank) +
        " exceeds the wire-format ceiling of " + std::to_string(kMaxWireK));
  }
  if (options.remote_token_fraction > 1.0) {
    return Status::InvalidArgument("remote_token_fraction must be <= 1");
  }
  if (options.train.record_objective) {
    return Status::InvalidArgument(
        "record_objective is not supported by dist_nomad yet");
  }
  if (options.train.nomadic_rows) {
    // Footnote 2, same trick as the shared-memory solver: every rank
    // transposes consistently and swaps the factors back.
    const Dataset transposed = Transpose(ds);
    DistNomadOptions inner = options;
    inner.train.nomadic_rows = false;
    auto result = Train(transposed, inner, transport);
    if (!result.ok()) return result.status();
    TrainResult swapped = std::move(result).value();
    std::swap(swapped.w, swapped.h);
    return swapped;
  }
  return DispatchPrecision(options.train.precision, [&](auto zero) {
    return TrainImpl<decltype(zero)>(ds, options, transport);
  });
}

std::vector<Result<TrainResult>> TrainLoopbackWorld(
    const Dataset& ds, const DistNomadOptions& options, int world) {
  auto fabric = MakeLoopbackFabric(world);
  std::vector<Result<TrainResult>> results(
      static_cast<size_t>(world), Status::Internal("rank did not run"));
  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      DistNomadSolver solver;
      results[static_cast<size_t>(r)] =
          solver.Train(ds, options, fabric[static_cast<size_t>(r)].get());
    });
  }
  for (auto& t : ranks) t.join();
  return results;
}

}  // namespace net
}  // namespace nomad
