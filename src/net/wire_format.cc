#include "net/wire_format.h"

#include <string>

#include "util/logging.h"

namespace nomad {
namespace net {

namespace {

constexpr uint32_t kHelloMagic = 0x314d4f4e;  // "NOM1" read as LE u32
constexpr size_t kHelloBytes = 1 + 4 + 4 + 4 + 2 + 1 + 1;
constexpr size_t kControlBytes = 1 + 1 + 1 + 4 + 4 + 7 * 8 + 2 * 8;

// Append/read fixed-width scalars. The host is little-endian (asserted in
// the header), so memcpy writes the wire byte order directly.
template <typename T>
void Append(std::vector<uint8_t>* out, T value) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

template <typename T>
T ReadAt(const uint8_t* data, size_t offset) {
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  return value;
}

bool IsFactorRowType(MsgType type) {
  return type == MsgType::kToken || type == MsgType::kHRow ||
         type == MsgType::kWRow;
}

}  // namespace

Result<MsgType> PeekType(const uint8_t* data, size_t size) {
  if (size == 0) return Status::InvalidArgument("empty payload");
  const uint8_t raw = data[0];
  if (raw < static_cast<uint8_t>(MsgType::kHello) ||
      raw > static_cast<uint8_t>(MsgType::kBatch)) {
    return Status::InvalidArgument("unknown message type byte " +
                                   std::to_string(static_cast<int>(raw)));
  }
  return static_cast<MsgType>(raw);
}

template <typename Real>
void EncodeFactorRow(MsgType type, int32_t id, uint32_t version,
                     const Real* values, int k, std::vector<uint8_t>* out,
                     uint32_t flags) {
  NOMAD_CHECK(IsFactorRowType(type));
  NOMAD_CHECK(k >= 1 && k <= kMaxWireK) << "k=" << k;
  NOMAD_CHECK(id >= 0) << "id=" << id;
  // Delta frames have their own payload layout and are built only inside
  // net/codec.cc; this encoder emits full rows exclusively.
  NOMAD_CHECK((flags & ~kFactorRowKnownFlags) == 0 &&
              (flags & kFactorRowFlagDelta) == 0)
      << "flags=" << flags;
  out->clear();
  out->reserve(kFactorRowHeaderBytes + static_cast<size_t>(k) * sizeof(Real));
  Append<uint8_t>(out, static_cast<uint8_t>(type));
  Append<uint8_t>(out, static_cast<uint8_t>(WirePrecisionOf<Real>()));
  Append<uint16_t>(out, static_cast<uint16_t>(k));
  Append<int32_t>(out, id);
  Append<uint32_t>(out, version);
  Append<uint32_t>(out, flags);  // flags word doubles as alignment padding
  const size_t at = out->size();
  out->resize(at + static_cast<size_t>(k) * sizeof(Real));
  std::memcpy(out->data() + at, values, static_cast<size_t>(k) * sizeof(Real));
}

template <typename Real>
Result<FactorRowView<Real>> DecodeFactorRow(const uint8_t* data, size_t size) {
  if (size < kFactorRowHeaderBytes) {
    return Status::InvalidArgument(
        "truncated factor-row frame: " + std::to_string(size) +
        " bytes, header needs " + std::to_string(kFactorRowHeaderBytes));
  }
  const MsgType type = static_cast<MsgType>(data[0]);
  if (!IsFactorRowType(type)) {
    return Status::InvalidArgument("not a factor-row frame (type byte " +
                                   std::to_string(static_cast<int>(data[0])) +
                                   ")");
  }
  // A delta-coded row only makes sense between a negotiated CodecTransport
  // pair; reaching this decoder means no codec unwrapped it. Reject before
  // the size checks — delta payloads are variable-length by design.
  const uint32_t raw_flags = ReadAt<uint32_t>(data, 12);
  if ((raw_flags & kFactorRowFlagDelta) != 0) {
    return Status::InvalidArgument(
        "delta-coded factor row without a negotiated wire codec");
  }
  const uint8_t precision = data[1];
  if (precision == static_cast<uint8_t>(WirePrecision::kBf16) ||
      precision == static_cast<uint8_t>(WirePrecision::kF16)) {
    return Status::InvalidArgument(
        std::string("quantized (") +
        (precision == static_cast<uint8_t>(WirePrecision::kBf16) ? "bf16"
                                                                 : "f16") +
        ") factor row without a negotiated wire codec");
  }
  if (precision != static_cast<uint8_t>(WirePrecision::kF64) &&
      precision != static_cast<uint8_t>(WirePrecision::kF32)) {
    return Status::InvalidArgument("unknown precision byte " +
                                   std::to_string(static_cast<int>(precision)));
  }
  if (precision != static_cast<uint8_t>(WirePrecisionOf<Real>())) {
    return Status::InvalidArgument(
        std::string("precision mismatch: frame carries ") +
        (precision == static_cast<uint8_t>(WirePrecision::kF32) ? "f32"
                                                                : "f64") +
        " but the decoder expects " + (sizeof(Real) == 4 ? "f32" : "f64"));
  }
  const int k = ReadAt<uint16_t>(data, 2);
  if (k < 1 || k > kMaxWireK) {
    return Status::InvalidArgument("factor-row k out of range: " +
                                   std::to_string(k));
  }
  const size_t expected =
      kFactorRowHeaderBytes + static_cast<size_t>(k) * sizeof(Real);
  if (size < expected) {
    return Status::InvalidArgument(
        "truncated factor-row frame: " + std::to_string(size) +
        " bytes, expected " + std::to_string(expected));
  }
  if (size > expected) {
    return Status::InvalidArgument(
        "oversized factor-row frame: " + std::to_string(size) +
        " bytes, expected " + std::to_string(expected));
  }
  FactorRowView<Real> view;
  view.type = type;
  view.id = ReadAt<int32_t>(data, 4);
  if (view.id < 0) {
    return Status::InvalidArgument("negative factor-row id " +
                                   std::to_string(view.id));
  }
  view.version = ReadAt<uint32_t>(data, 8);
  view.flags = ReadAt<uint32_t>(data, 12);
  if ((view.flags & ~kFactorRowKnownFlags) != 0) {
    return Status::InvalidArgument("factor-row frame carries unknown flags " +
                                   std::to_string(view.flags));
  }
  if (view.flags != 0 && type != MsgType::kToken) {
    return Status::InvalidArgument(
        "factor-row flags are only defined for token frames");
  }
  view.k = k;
  view.values = reinterpret_cast<const Real*>(data + kFactorRowHeaderBytes);
  return view;
}

template void EncodeFactorRow<float>(MsgType, int32_t, uint32_t, const float*,
                                     int, std::vector<uint8_t>*, uint32_t);
template void EncodeFactorRow<double>(MsgType, int32_t, uint32_t,
                                      const double*, int,
                                      std::vector<uint8_t>*, uint32_t);
template Result<FactorRowView<float>> DecodeFactorRow<float>(const uint8_t*,
                                                             size_t);
template Result<FactorRowView<double>> DecodeFactorRow<double>(const uint8_t*,
                                                               size_t);

void EncodeHello(const HelloFrame& hello, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(kHelloBytes);
  Append<uint8_t>(out, static_cast<uint8_t>(MsgType::kHello));
  Append<uint32_t>(out, kHelloMagic);
  Append<int32_t>(out, hello.rank);
  Append<int32_t>(out, hello.world);
  Append<uint16_t>(out, static_cast<uint16_t>(hello.k));
  Append<uint8_t>(out, static_cast<uint8_t>(hello.precision));
  Append<uint8_t>(out, hello.codec);
}

Result<HelloFrame> DecodeHello(const uint8_t* data, size_t size) {
  if (size != kHelloBytes) {
    return Status::InvalidArgument("hello frame is " + std::to_string(size) +
                                   " bytes, expected " +
                                   std::to_string(kHelloBytes));
  }
  if (data[0] != static_cast<uint8_t>(MsgType::kHello)) {
    return Status::InvalidArgument("not a hello frame");
  }
  if (ReadAt<uint32_t>(data, 1) != kHelloMagic) {
    return Status::InvalidArgument("bad hello magic (not a NOMAD peer?)");
  }
  HelloFrame hello;
  hello.rank = ReadAt<int32_t>(data, 5);
  hello.world = ReadAt<int32_t>(data, 9);
  hello.k = ReadAt<uint16_t>(data, 13);
  const uint8_t precision = data[15];
  if (precision != static_cast<uint8_t>(WirePrecision::kF64) &&
      precision != static_cast<uint8_t>(WirePrecision::kF32)) {
    return Status::InvalidArgument("hello: unknown precision byte " +
                                   std::to_string(static_cast<int>(precision)));
  }
  hello.precision = static_cast<WirePrecision>(precision);
  hello.codec = data[16];  // validated against the local spec by the caller
  if (hello.world < 1 || hello.rank < 0 || hello.rank >= hello.world) {
    return Status::InvalidArgument(
        "hello: rank " + std::to_string(hello.rank) + " outside world " +
        std::to_string(hello.world));
  }
  return hello;
}

void EncodeControl(const ControlFrame& frame, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(kControlBytes);
  Append<uint8_t>(out, static_cast<uint8_t>(MsgType::kControl));
  Append<uint8_t>(out, static_cast<uint8_t>(frame.kind));
  Append<uint8_t>(out, frame.flag);
  Append<int32_t>(out, frame.rank);
  Append<int32_t>(out, frame.epoch);
  Append<int64_t>(out, frame.held);
  Append<int64_t>(out, frame.updates);
  Append<int64_t>(out, frame.count);
  Append<int64_t>(out, frame.tokens_sent);
  Append<int64_t>(out, frame.tokens_received);
  Append<int64_t>(out, frame.bytes_sent);
  Append<int64_t>(out, frame.bytes_received);
  Append<double>(out, frame.sq_err);
  Append<double>(out, frame.seconds);
}

Result<ControlFrame> DecodeControl(const uint8_t* data, size_t size) {
  if (size != kControlBytes) {
    return Status::InvalidArgument("control frame is " + std::to_string(size) +
                                   " bytes, expected " +
                                   std::to_string(kControlBytes));
  }
  if (data[0] != static_cast<uint8_t>(MsgType::kControl)) {
    return Status::InvalidArgument("not a control frame");
  }
  const uint8_t kind = data[1];
  if (kind < static_cast<uint8_t>(ControlKind::kBarrierRequest) ||
      kind > static_cast<uint8_t>(ControlKind::kLeaseSync)) {
    return Status::InvalidArgument("unknown control kind " +
                                   std::to_string(static_cast<int>(kind)));
  }
  ControlFrame frame;
  frame.kind = static_cast<ControlKind>(kind);
  frame.flag = data[2];
  frame.rank = ReadAt<int32_t>(data, 3);
  frame.epoch = ReadAt<int32_t>(data, 7);
  frame.held = ReadAt<int64_t>(data, 11);
  frame.updates = ReadAt<int64_t>(data, 19);
  frame.count = ReadAt<int64_t>(data, 27);
  frame.tokens_sent = ReadAt<int64_t>(data, 35);
  frame.tokens_received = ReadAt<int64_t>(data, 43);
  frame.bytes_sent = ReadAt<int64_t>(data, 51);
  frame.bytes_received = ReadAt<int64_t>(data, 59);
  frame.sq_err = ReadAt<double>(data, 67);
  frame.seconds = ReadAt<double>(data, 75);
  return frame;
}

}  // namespace net
}  // namespace nomad
