#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "net/wire_format.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace nomad {
namespace net {

namespace {

constexpr size_t kLengthPrefixBytes = 4;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Token frames are small and latency-sensitive; Nagle would batch them
  // behind ACKs. Best-effort: a failure only costs latency.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Blocking exact-size read with a deadline, used only during the
// handshake (the communicator thread never blocks).
Status ReadExact(int fd, uint8_t* buf, size_t n, double timeout_seconds) {
  Stopwatch watch;
  size_t got = 0;
  while (got < n) {
    const double left = timeout_seconds - watch.ElapsedSeconds();
    if (left <= 0) return Status::IOError("handshake read timed out");
    struct pollfd pfd = {fd, POLLIN, 0};
    const int pr = poll(&pfd, 1, std::max(1, static_cast<int>(left * 1e3)));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (pr == 0) continue;
    const ssize_t r = recv(fd, buf + got, n - got, 0);
    if (r == 0) return Status::IOError("peer closed during handshake");
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("recv");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteExact(int fd, const uint8_t* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t r = send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

// One framed buffer: [u32 length][payload]. Only the (cold) handshake
// copies the payload behind a prefix; the hot send path keeps the prefix
// beside the moved-in payload instead (see Framed).
std::vector<uint8_t> FrameUp(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> framed;
  framed.reserve(kLengthPrefixBytes + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  framed.resize(kLengthPrefixBytes);
  std::memcpy(framed.data(), &len, kLengthPrefixBytes);
  framed.insert(framed.end(), payload.begin(), payload.end());
  return framed;
}

// One queued outbound frame: the 4-byte length prefix lives beside the
// payload (moved in from Send(), never copied); `offset` tracks write
// progress across the virtual [prefix][payload] concatenation.
struct Framed {
  explicit Framed(std::vector<uint8_t> p) : payload(std::move(p)) {
    const uint32_t len = static_cast<uint32_t>(payload.size());
    std::memcpy(prefix, &len, kLengthPrefixBytes);
  }
  size_t total() const { return kLengthPrefixBytes + payload.size(); }
  const uint8_t* At(size_t offset, size_t* contiguous) const {
    if (offset < kLengthPrefixBytes) {
      *contiguous = kLengthPrefixBytes - offset;
      return prefix + offset;
    }
    *contiguous = total() - offset;
    return payload.data() + (offset - kLengthPrefixBytes);
  }
  uint8_t prefix[kLengthPrefixBytes];
  std::vector<uint8_t> payload;
};

struct Conn {
  int fd = -1;
  // Outbound frames, drained by the communicator thread; guarded by
  // Impl::send_mu together with fd (the thread marks dead peers there).
  std::deque<Framed> outbox;
  size_t out_offset = 0;  // progress within outbox.front()
  std::vector<uint8_t> inbuf;
  size_t in_consumed = 0;  // parsed prefix of inbuf
};

}  // namespace

struct TcpTransport::Impl {
  int rank = -1;
  int world = 0;
  TcpOptions options;
  int listen_fd = -1;
  int listen_port = 0;
  std::vector<Conn> conns;  // indexed by peer rank; [rank] unused
  std::mutex send_mu;
  int wake_pipe[2] = {-1, -1};
  std::thread comm;
  std::atomic<bool> established{false};
  std::atomic<bool> closing{false};
  bool closed = false;  // guarded by close_mu; Close() is idempotent
  std::mutex close_mu;
  std::mutex recv_mu;
  std::deque<std::pair<int, std::vector<uint8_t>>> recv_q;
  std::atomic<int64_t> messages_sent{0};
  std::atomic<int64_t> messages_received{0};
  std::atomic<int64_t> bytes_sent{0};
  std::atomic<int64_t> bytes_received{0};
  // Liveness bookkeeping: last time any bytes arrived from each peer
  // (heartbeat or data), and the communicator thread's last beacon time.
  std::vector<std::atomic<int64_t>> last_heard_ns;
  int64_t last_beat_ns = 0;  // comm thread only

  HelloFrame MyHello() const {
    HelloFrame hello;
    hello.rank = rank;
    hello.world = world;
    hello.k = options.hello_k;
    hello.precision =
        options.hello_f32 ? WirePrecision::kF32 : WirePrecision::kF64;
    hello.codec = options.hello_codec;
    return hello;
  }

  Status ValidatePeerHello(const HelloFrame& hello, int expected_rank) const {
    if (hello.world != world) {
      return Status::FailedPrecondition(
          "peer world " + std::to_string(hello.world) + " != " +
          std::to_string(world));
    }
    if (expected_rank >= 0 && hello.rank != expected_rank) {
      return Status::FailedPrecondition(
          "peer claims rank " + std::to_string(hello.rank) + ", expected " +
          std::to_string(expected_rank));
    }
    if (options.hello_k != 0 && hello.k != 0 && hello.k != options.hello_k) {
      return Status::FailedPrecondition(
          "peer k " + std::to_string(hello.k) + " != " +
          std::to_string(options.hello_k));
    }
    const WirePrecision mine =
        options.hello_f32 ? WirePrecision::kF32 : WirePrecision::kF64;
    if (hello.precision != mine) {
      return Status::FailedPrecondition(
          "peer factor precision differs from ours");
    }
    if (hello.codec != options.hello_codec) {
      return Status::FailedPrecondition(
          "wire codec mismatch: peer advertises codec byte " +
          std::to_string(static_cast<int>(hello.codec)) + ", ours is " +
          std::to_string(static_cast<int>(options.hello_codec)));
    }
    return Status::OK();
  }

  // Sends our framed hello and reads/validates the peer's framed hello.
  Status Handshake(int fd, int expected_rank, double timeout,
                   int* peer_rank) {
    std::vector<uint8_t> hello_payload;
    EncodeHello(MyHello(), &hello_payload);
    NOMAD_RETURN_IF_ERROR(WriteExact(fd, FrameUp(hello_payload).data(),
                                     kLengthPrefixBytes +
                                         hello_payload.size()));
    uint8_t len_buf[kLengthPrefixBytes];
    NOMAD_RETURN_IF_ERROR(ReadExact(fd, len_buf, kLengthPrefixBytes, timeout));
    uint32_t len = 0;
    std::memcpy(&len, len_buf, kLengthPrefixBytes);
    if (len == 0 || len > 64) {
      return Status::IOError("handshake frame has implausible length " +
                             std::to_string(len));
    }
    std::vector<uint8_t> payload(len);
    NOMAD_RETURN_IF_ERROR(ReadExact(fd, payload.data(), len, timeout));
    auto hello = DecodeHello(payload.data(), payload.size());
    if (!hello.ok()) return hello.status();
    NOMAD_RETURN_IF_ERROR(ValidatePeerHello(hello.value(), expected_rank));
    *peer_rank = hello.value().rank;
    return Status::OK();
  }

  // Parses complete frames out of a connection's input buffer into the
  // receive queue. Returns false (and records nothing more) on a frame
  // that exceeds max_frame_bytes — the connection is poisoned.
  bool ExtractFrames(int src, Conn* conn) {
    while (conn->inbuf.size() - conn->in_consumed >= kLengthPrefixBytes) {
      uint32_t len = 0;
      std::memcpy(&len, conn->inbuf.data() + conn->in_consumed,
                  kLengthPrefixBytes);
      if (len == 0 || len > options.max_frame_bytes) {
        NOMAD_LOG(kWarning) << "tcp transport: dropping rank-" << src
                            << " connection after " << len
                            << "-byte frame length";
        return false;
      }
      if (conn->inbuf.size() - conn->in_consumed <
          kLengthPrefixBytes + len) {
        break;
      }
      const uint8_t* payload =
          conn->inbuf.data() + conn->in_consumed + kLengthPrefixBytes;
      // Heartbeat beacons are transport-internal: their arrival already
      // refreshed last_heard_ns, so they are counted but never surfaced.
      const bool beacon =
          len >= 2 && payload[0] == static_cast<uint8_t>(MsgType::kControl) &&
          payload[1] == static_cast<uint8_t>(ControlKind::kHeartbeat);
      if (!beacon) {
        std::vector<uint8_t> frame(payload, payload + len);
        std::lock_guard<std::mutex> lock(recv_mu);
        recv_q.emplace_back(src, std::move(frame));
      }
      messages_received.fetch_add(1, std::memory_order_relaxed);
      bytes_received.fetch_add(
          static_cast<int64_t>(kLengthPrefixBytes + len),
          std::memory_order_relaxed);
      conn->in_consumed += kLengthPrefixBytes + len;
    }
    if (conn->in_consumed > 0) {
      conn->inbuf.erase(conn->inbuf.begin(),
                        conn->inbuf.begin() +
                            static_cast<ptrdiff_t>(conn->in_consumed));
      conn->in_consumed = 0;
    }
    return true;
  }

  void MarkDead(int peer) {
    std::lock_guard<std::mutex> lock(send_mu);
    Conn& conn = conns[static_cast<size_t>(peer)];
    if (conn.fd >= 0) {
      close(conn.fd);
      conn.fd = -1;
    }
    conn.outbox.clear();
    conn.out_offset = 0;
  }

  /// Appends one heartbeat beacon to every live peer's outbox once the
  /// interval elapsed. Runs on the communicator thread, so its poll
  /// timeout bounds the beacon jitter.
  void MaybeBeat() {
    if (!options.heartbeat.enabled()) return;
    const int64_t now = NowNs();
    const int64_t interval_ns =
        static_cast<int64_t>(options.heartbeat.interval_seconds * 1e9);
    if (now - last_beat_ns < interval_ns) return;
    last_beat_ns = now;
    ControlFrame beat;
    beat.kind = ControlKind::kHeartbeat;
    beat.rank = rank;
    std::vector<uint8_t> payload;
    EncodeControl(beat, &payload);
    const int64_t wire_bytes =
        static_cast<int64_t>(kLengthPrefixBytes + payload.size());
    std::lock_guard<std::mutex> lock(send_mu);
    for (int r = 0; r < world; ++r) {
      Conn& conn = conns[static_cast<size_t>(r)];
      if (r == rank || conn.fd < 0) continue;
      conn.outbox.emplace_back(payload);  // each peer's Framed owns a copy
      messages_sent.fetch_add(1, std::memory_order_relaxed);
      bytes_sent.fetch_add(wire_bytes, std::memory_order_relaxed);
    }
  }

  void CommLoop() {
    std::vector<struct pollfd> pfds;
    std::vector<int> pfd_rank;
    Stopwatch closing_watch;
    bool closing_seen = false;
    // With heartbeats on, wake often enough to beat on time.
    const int poll_ms =
        options.heartbeat.enabled()
            ? std::max(1, std::min(200, static_cast<int>(
                                            options.heartbeat
                                                .interval_seconds *
                                            1e3 / 4)))
            : 200;
    for (;;) {
      MaybeBeat();
      pfds.clear();
      pfd_rank.clear();
      pfds.push_back({wake_pipe[0], POLLIN, 0});
      pfd_rank.push_back(-1);
      bool any_outbound = false;
      {
        std::lock_guard<std::mutex> lock(send_mu);
        for (int r = 0; r < world; ++r) {
          Conn& conn = conns[static_cast<size_t>(r)];
          if (conn.fd < 0) continue;
          short events = POLLIN;
          if (!conn.outbox.empty()) {
            events |= POLLOUT;
            any_outbound = true;
          }
          pfds.push_back({conn.fd, events, 0});
          pfd_rank.push_back(r);
        }
      }
      if (closing.load(std::memory_order_acquire)) {
        if (!closing_seen) {
          closing_seen = true;
          closing_watch.Restart();
        }
        // Exit once every queued frame is on the wire (or the flush
        // deadline passes — a vanished peer must not wedge Close()).
        if (!any_outbound ||
            closing_watch.ElapsedSeconds() > options.connect_timeout_seconds) {
          return;
        }
      }
      const int pr =
          poll(pfds.data(), static_cast<nfds_t>(pfds.size()), poll_ms);
      if (pr < 0 && errno != EINTR) return;
      for (size_t i = 0; i < pfds.size(); ++i) {
        const int peer = pfd_rank[i];
        if (peer < 0) {
          if (pfds[i].revents & POLLIN) {
            uint8_t drain[256];
            while (read(wake_pipe[0], drain, sizeof(drain)) > 0) {
            }
          }
          continue;
        }
        Conn& conn = conns[static_cast<size_t>(peer)];
        if (conn.fd < 0) continue;
        if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          bool dead = false;
          for (;;) {
            uint8_t buf[65536];
            const ssize_t r = recv(conn.fd, buf, sizeof(buf), 0);
            if (r > 0) {
              last_heard_ns[static_cast<size_t>(peer)].store(
                  NowNs(), std::memory_order_relaxed);
              conn.inbuf.insert(conn.inbuf.end(), buf, buf + r);
              if (!ExtractFrames(peer, &conn)) {
                dead = true;
                break;
              }
              continue;
            }
            if (r == 0) {
              // Orderly peer close: normal during shutdown, a dead peer
              // otherwise. Either way this direction is done.
              dead = true;
              break;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            dead = true;
            break;
          }
          if (dead) {
            MarkDead(peer);
            continue;
          }
        }
        if (pfds[i].revents & POLLOUT) {
          std::lock_guard<std::mutex> lock(send_mu);
          bool dead = false;
          while (!conn.outbox.empty()) {
            const Framed& front = conn.outbox.front();
            // One sendmsg per attempt covers both the (remaining) length
            // prefix and the payload — no extra syscall for the 4 bytes, no
            // copy to make them contiguous, and MSG_NOSIGNAL still applies
            // (writev would SIGPIPE on a closed peer).
            struct iovec iov[2];
            int iov_n = 0;
            size_t contiguous = 0;
            const uint8_t* at = front.At(conn.out_offset, &contiguous);
            iov[iov_n].iov_base = const_cast<uint8_t*>(at);
            iov[iov_n].iov_len = contiguous;
            ++iov_n;
            if (conn.out_offset < kLengthPrefixBytes &&
                !front.payload.empty()) {
              iov[iov_n].iov_base =
                  const_cast<uint8_t*>(front.payload.data());
              iov[iov_n].iov_len = front.payload.size();
              ++iov_n;
            }
            struct msghdr msg = {};
            msg.msg_iov = iov;
            msg.msg_iovlen = static_cast<size_t>(iov_n);
            const ssize_t r = sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
            if (r < 0) {
              if (errno == EAGAIN || errno == EWOULDBLOCK) break;
              if (errno == EINTR) continue;
              dead = true;
              break;
            }
            conn.out_offset += static_cast<size_t>(r);
            if (conn.out_offset == front.total()) {
              conn.outbox.pop_front();
              conn.out_offset = 0;
            }
          }
          if (dead) {
            if (conn.fd >= 0) {
              close(conn.fd);
              conn.fd = -1;
            }
            conn.outbox.clear();
            conn.out_offset = 0;
          }
        }
      }
    }
  }
};

Result<TcpPeer> ParseTcpPeer(const std::string& spec) {
  TcpPeer peer;
  const size_t colon = spec.rfind(':');
  std::string port_str;
  if (colon == std::string::npos) {
    port_str = spec;
  } else {
    peer.host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  if (peer.host.empty() || port_str.empty() ||
      port_str.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("bad peer spec '" + spec +
                                   "' (expected host:port)");
  }
  peer.port = std::atoi(port_str.c_str());
  // Port 0 is legal: "this rank listens ephemeral and is never dialed"
  // (in the mesh only lower ranks are dialed, see Establish()).
  if (peer.port < 0 || peer.port > 65535) {
    return Status::InvalidArgument("bad peer port in '" + spec + "'");
  }
  return peer;
}

TcpTransport::TcpTransport(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

TcpTransport::~TcpTransport() { Close(); }

Result<std::unique_ptr<TcpTransport>> TcpTransport::Listen(
    int rank, int world, int port, TcpOptions options) {
  if (world < 1 || rank < 0 || rank >= world) {
    return Status::InvalidArgument("rank " + std::to_string(rank) +
                                   " outside world " + std::to_string(world));
  }
  auto impl = std::make_unique<Impl>();
  impl->rank = rank;
  impl->world = world;
  impl->options = options;
  impl->conns.resize(static_cast<size_t>(world));
  impl->last_heard_ns =
      std::vector<std::atomic<int64_t>>(static_cast<size_t>(world));

  impl->listen_fd = socket(AF_INET, SOCK_STREAM, 0);
  if (impl->listen_fd < 0) return Errno("socket");
  int one = 1;
  setsockopt(impl->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(impl->listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    const Status s = Errno("bind port " + std::to_string(port));
    close(impl->listen_fd);
    return s;
  }
  if (listen(impl->listen_fd, world + 4) < 0) {
    const Status s = Errno("listen");
    close(impl->listen_fd);
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(impl->listen_fd,
                  reinterpret_cast<struct sockaddr*>(&addr), &addr_len) < 0) {
    const Status s = Errno("getsockname");
    close(impl->listen_fd);
    return s;
  }
  impl->listen_port = ntohs(addr.sin_port);
  const Status nonblocking = SetNonBlocking(impl->listen_fd);
  if (!nonblocking.ok()) {
    close(impl->listen_fd);
    return nonblocking;
  }
  return std::unique_ptr<TcpTransport>(new TcpTransport(std::move(impl)));
}

int TcpTransport::listen_port() const { return impl_->listen_port; }
int TcpTransport::rank() const { return impl_->rank; }
int TcpTransport::world() const { return impl_->world; }

Status TcpTransport::Establish(const std::vector<TcpPeer>& peers) {
  Impl& im = *impl_;
  if (static_cast<int>(peers.size()) != im.world) {
    return Status::InvalidArgument(
        "peer list has " + std::to_string(peers.size()) + " entries for world " +
        std::to_string(im.world));
  }
  if (im.established.load()) {
    return Status::FailedPrecondition("transport already established");
  }
  // Only the ranks below us are ever dialed; their ports must be real.
  // Higher ranks dial in, so their peer entries may carry port 0
  // ("ephemeral, never dialed") — that is how a mesh avoids fixed ports.
  for (int r = 0; r < im.rank; ++r) {
    if (peers[static_cast<size_t>(r)].port == 0) {
      return Status::InvalidArgument(
          "peer rank " + std::to_string(r) + " has port 0 but rank " +
          std::to_string(im.rank) + " must dial it");
    }
  }
  const double timeout = im.options.connect_timeout_seconds;
  Stopwatch watch;
  int pending_accepts = im.world - 1 - im.rank;
  std::vector<bool> connected(static_cast<size_t>(im.world), false);
  connected[static_cast<size_t>(im.rank)] = true;
  int pending_connects = im.rank;

  while (pending_accepts > 0 || pending_connects > 0) {
    if (watch.ElapsedSeconds() > timeout) {
      return Status::IOError(
          "mesh not established within " + std::to_string(timeout) +
          "s (still waiting for " + std::to_string(pending_accepts) +
          " accepts, " + std::to_string(pending_connects) + " connects)");
    }
    // Accept side: ranks above us dial in and identify via hello.
    for (;;) {
      const int fd = accept(im.listen_fd, nullptr, nullptr);
      if (fd < 0) break;
      int peer_rank = -1;
      const Status s = im.Handshake(fd, /*expected_rank=*/-1,
                                    timeout - watch.ElapsedSeconds(),
                                    &peer_rank);
      if (!s.ok() || peer_rank <= im.rank ||
          connected[static_cast<size_t>(peer_rank)]) {
        NOMAD_LOG(kWarning) << "tcp transport: rejecting inbound peer: "
                            << (s.ok() ? "bad or duplicate rank" : s.ToString());
        close(fd);
        continue;
      }
      im.conns[static_cast<size_t>(peer_rank)].fd = fd;
      connected[static_cast<size_t>(peer_rank)] = true;
      --pending_accepts;
    }
    // Connect side: we dial every rank below us, retrying while they boot.
    for (int r = 0; r < im.rank; ++r) {
      if (connected[static_cast<size_t>(r)]) continue;
      struct addrinfo hints = {};
      hints.ai_family = AF_INET;
      hints.ai_socktype = SOCK_STREAM;
      struct addrinfo* res = nullptr;
      const std::string port_str = std::to_string(peers[static_cast<size_t>(r)].port);
      if (getaddrinfo(peers[static_cast<size_t>(r)].host.c_str(),
                      port_str.c_str(), &hints, &res) != 0 ||
          res == nullptr) {
        continue;  // DNS hiccup: retry next round
      }
      const int fd = socket(res->ai_family, res->ai_socktype, 0);
      if (fd < 0) {
        freeaddrinfo(res);
        continue;
      }
      const int cr = connect(fd, res->ai_addr, res->ai_addrlen);
      freeaddrinfo(res);
      if (cr < 0) {
        close(fd);  // peer not listening yet; retry next round
        continue;
      }
      int peer_rank = -1;
      const Status s = im.Handshake(fd, /*expected_rank=*/r,
                                    timeout - watch.ElapsedSeconds(),
                                    &peer_rank);
      if (!s.ok()) {
        close(fd);
        return s;  // a live but incompatible peer is a config error
      }
      im.conns[static_cast<size_t>(r)].fd = fd;
      connected[static_cast<size_t>(r)] = true;
      --pending_connects;
    }
    if (pending_accepts > 0 || pending_connects > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  for (int r = 0; r < im.world; ++r) {
    const int fd = im.conns[static_cast<size_t>(r)].fd;
    if (fd < 0) continue;
    NOMAD_RETURN_IF_ERROR(SetNonBlocking(fd));
    SetNoDelay(fd);
  }
  if (pipe(im.wake_pipe) < 0) return Errno("pipe");
  NOMAD_RETURN_IF_ERROR(SetNonBlocking(im.wake_pipe[0]));
  NOMAD_RETURN_IF_ERROR(SetNonBlocking(im.wake_pipe[1]));
  const int64_t now = NowNs();
  for (auto& t : im.last_heard_ns) t.store(now, std::memory_order_relaxed);
  im.established.store(true, std::memory_order_release);
  im.comm = std::thread([&im] { im.CommLoop(); });
  return Status::OK();
}

Status TcpTransport::Send(int dest, std::vector<uint8_t> frame) {
  Impl& im = *impl_;
  if (dest < 0 || dest >= im.world || dest == im.rank) {
    return Status::InvalidArgument("tcp: bad destination rank " +
                                   std::to_string(dest));
  }
  if (frame.size() > im.options.max_frame_bytes) {
    // Reject here instead of letting the receiver poison the connection:
    // its ExtractFrames() drops the whole link on an oversized length
    // prefix. Senders that can legitimately exceed the limit (coalesced
    // codec flushes) split before calling Send().
    return Status::InvalidArgument(
        "tcp: frame of " + std::to_string(frame.size()) +
        " bytes exceeds max_frame_bytes " +
        std::to_string(im.options.max_frame_bytes));
  }
  if (!im.established.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("tcp: transport not established");
  }
  if (im.closing.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("tcp: transport closed");
  }
  const int64_t wire_bytes =
      static_cast<int64_t>(kLengthPrefixBytes + frame.size());
  {
    std::lock_guard<std::mutex> lock(im.send_mu);
    Conn& conn = im.conns[static_cast<size_t>(dest)];
    if (conn.fd < 0) {
      // The connection died (EPIPE/ECONNRESET/EOF, observed by the
      // communicator thread) — a liveness condition, not a usage error.
      return Status::Unavailable("tcp: rank " + std::to_string(dest) +
                                 " is unreachable (connection lost)");
    }
    conn.outbox.emplace_back(std::move(frame));  // payload moved, not copied
  }
  im.messages_sent.fetch_add(1, std::memory_order_relaxed);
  im.bytes_sent.fetch_add(wire_bytes, std::memory_order_relaxed);
  const uint8_t wake = 1;
  // A full pipe means wakeups are already pending; dropping this one is fine.
  [[maybe_unused]] const ssize_t r = write(im.wake_pipe[1], &wake, 1);
  return Status::OK();
}

bool TcpTransport::TryReceive(std::vector<uint8_t>* frame, int* src) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.recv_mu);
  if (im.recv_q.empty()) return false;
  *src = im.recv_q.front().first;
  *frame = std::move(im.recv_q.front().second);
  im.recv_q.pop_front();
  return true;
}

PeerStatus TcpTransport::peer_status(int peer) const {
  Impl& im = *impl_;
  if (peer < 0 || peer >= im.world || peer == im.rank ||
      !im.established.load(std::memory_order_acquire)) {
    return PeerStatus::kAlive;
  }
  {
    std::lock_guard<std::mutex> lock(im.send_mu);
    if (im.conns[static_cast<size_t>(peer)].fd < 0) return PeerStatus::kDead;
  }
  if (im.options.heartbeat.enabled()) {
    const double silent_seconds =
        static_cast<double>(
            NowNs() - im.last_heard_ns[static_cast<size_t>(peer)].load(
                          std::memory_order_relaxed)) *
        1e-9;
    if (silent_seconds > im.options.heartbeat.effective_timeout()) {
      return PeerStatus::kDead;
    }
  }
  return PeerStatus::kAlive;
}

TransportStats TcpTransport::stats() const {
  const Impl& im = *impl_;
  TransportStats s;
  s.messages_sent = im.messages_sent.load(std::memory_order_relaxed);
  s.messages_received = im.messages_received.load(std::memory_order_relaxed);
  s.bytes_sent = im.bytes_sent.load(std::memory_order_relaxed);
  s.bytes_received = im.bytes_received.load(std::memory_order_relaxed);
  return s;
}

Status TcpTransport::Close() {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.close_mu);
    if (im.closed) return Status::OK();
    im.closed = true;
  }
  im.closing.store(true, std::memory_order_release);
  if (im.comm.joinable()) {
    const uint8_t wake = 1;
    [[maybe_unused]] const ssize_t r = write(im.wake_pipe[1], &wake, 1);
    im.comm.join();
  }
  {
    // send_mu also covers concurrent peer_status() readers of conn.fd.
    std::lock_guard<std::mutex> lock(im.send_mu);
    for (Conn& conn : im.conns) {
      if (conn.fd >= 0) {
        shutdown(conn.fd, SHUT_RDWR);
        close(conn.fd);
        conn.fd = -1;
      }
    }
  }
  if (im.listen_fd >= 0) {
    close(im.listen_fd);
    im.listen_fd = -1;
  }
  for (int& fd : im.wake_pipe) {
    if (fd >= 0) {
      close(fd);
      fd = -1;
    }
  }
  return Status::OK();
}

}  // namespace net
}  // namespace nomad
