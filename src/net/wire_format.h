#ifndef NOMAD_NET_WIRE_FORMAT_H_
#define NOMAD_NET_WIRE_FORMAT_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/status.h"

namespace nomad {
/// The multi-process distributed layer: wire formats, transports
/// (loopback + TCP), and the distributed NOMAD solver built on them.
namespace net {

// The codecs memcpy fixed-width integers and IEEE floats straight into the
// payload, so the wire byte order is the host byte order. Every platform
// this library targets is little-endian; a big-endian port would add byte
// swaps here (and only here).
static_assert(std::endian::native == std::endian::little,
              "net/ wire format assumes a little-endian host");

/// First byte of every payload: what kind of frame follows. Values are part
/// of the wire contract and must never be reused.
enum class MsgType : uint8_t {
  kHello = 1,    ///< Connection handshake (HelloFrame).
  kToken = 2,    ///< Item-token hand-off: ownership of column j plus its
                 ///< current h_j row moves to the receiving rank.
  kHRow = 3,     ///< h-row state broadcast during a trace barrier — same
                 ///< codec as kToken but no ownership transfer.
  kWRow = 4,     ///< w-row gather to rank 0 at the end of training — same
                 ///< codec as kToken, `id` is the user row index.
  kControl = 5,  ///< Protocol control message (ControlFrame).
  kBatch = 6,    ///< Codec-coalesced bundle of frames (net/codec.h): one
                 ///< transport payload carrying [u32 len][frame] sub-frames.
                 ///< Only emitted/consumed by a negotiated CodecTransport;
                 ///< a solver receiving one raw reports a codec mismatch.
};

/// Reads the MsgType byte of a payload without decoding the rest; rejects
/// empty payloads and unknown type bytes with InvalidArgument.
Result<MsgType> PeekType(const uint8_t* data, size_t size);

/// Storage precision tag carried by factor-row frames. Matches the order of
/// nomad::Precision (f64 = 0, f32 = 1) but is its own type so the wire
/// contract does not move if the solver enum grows.
enum class WirePrecision : uint8_t {
  kF64 = 0,   ///< 8-byte IEEE double payload entries.
  kF32 = 1,   ///< 4-byte IEEE float payload entries.
  kBf16 = 2,  ///< 2-byte bfloat16 entries (top half of an IEEE float).
              ///< Wire-only: produced/consumed by a negotiated
              ///< CodecTransport (net/codec.h), never by the solver.
  kF16 = 3,   ///< 2-byte IEEE 754 half entries. Wire-only, like kBf16.
};

/// Payload bytes per factor entry for a WirePrecision tag.
constexpr size_t WireEntryBytes(WirePrecision precision) {
  return precision == WirePrecision::kF64   ? 8
         : precision == WirePrecision::kF32 ? 4
                                            : 2;
}

/// The WirePrecision tag for a Real storage type (float or double).
template <typename Real>
constexpr WirePrecision WirePrecisionOf() {
  static_assert(sizeof(Real) == 4 || sizeof(Real) == 8,
                "factor rows are float or double");
  return sizeof(Real) == 4 ? WirePrecision::kF32 : WirePrecision::kF64;
}

/// Hard ceiling on the latent dimensionality a factor-row frame may claim.
/// Real models run k in the tens-to-hundreds; the cap bounds the allocation
/// a malformed (or hostile) frame can demand before the length check.
constexpr int kMaxWireK = 4096;

/// Fixed header size of a factor-row frame; the Real payload follows. The
/// header is padded to 16 bytes so the payload entries stay naturally
/// aligned for double when the frame sits at the start of an allocated
/// buffer — which lets DecodeFactorRow hand out a borrowed pointer instead
/// of copying.
constexpr size_t kFactorRowHeaderBytes = 16;

/// Flag bits carried in a factor-row frame's flags word (formerly the
/// all-zero reserved word, so old frames decode unchanged).
enum FactorRowFlags : uint32_t {
  /// kToken only: the frame is an authoritative re-grant of a token lost
  /// with a dead rank. The receiver must accept it and reset its version
  /// counter to the frame's even if a (stale) higher local version exists.
  kFactorRowFlagRegrant = 1u << 0,
  /// kToken/kHRow: the payload is delta-coded against the receiver's cached
  /// copy of this row (net/codec.h). Such frames are produced and unwrapped
  /// entirely inside a negotiated CodecTransport pair; DecodeFactorRow
  /// rejects them so a codec mismatch surfaces as a clean error.
  kFactorRowFlagDelta = 1u << 1,
};

/// Every flag bit a decoder understands; frames with unknown bits set are
/// rejected, keeping the word extensible without silent misinterpretation.
constexpr uint32_t kFactorRowKnownFlags =
    kFactorRowFlagRegrant | kFactorRowFlagDelta;

/// Decoded view of a factor-row frame (kToken / kHRow / kWRow). `values`
/// points into the caller's payload buffer and is valid only while that
/// buffer lives.
template <typename Real>
struct FactorRowView {
  MsgType type = MsgType::kToken;  ///< Which of the three row kinds.
  int32_t id = 0;        ///< Item column j (kToken/kHRow) or user row i
                         ///< (kWRow).
  uint32_t version = 0;  ///< Monotonic per-column hop counter; receivers
                         ///< check it only ever advances (kToken/kHRow).
  uint32_t flags = 0;    ///< FactorRowFlags bits (0 for normal traffic).
  int k = 0;             ///< Latent dimensionality of `values`.
  const Real* values = nullptr;  ///< The k factor entries, borrowed from
                                 ///< the payload buffer. Naturally aligned
                                 ///< whenever the frame starts at an
                                 ///< allocated buffer (16-byte header).
};

/// Encodes a factor-row frame into `out` (cleared first). Layout:
/// [type u8][precision u8][k u16][id i32][version u32][flags u32]
/// [k × Real]. `type` must be kToken, kHRow, or kWRow; k in [1, kMaxWireK];
/// `flags` must only use kFactorRowKnownFlags bits.
template <typename Real>
void EncodeFactorRow(MsgType type, int32_t id, uint32_t version,
                     const Real* values, int k, std::vector<uint8_t>* out,
                     uint32_t flags = 0);

/// Decodes a factor-row frame, validating shape before trusting any field:
/// truncated or oversized payloads, k outside [1, kMaxWireK], negative ids,
/// unknown precision bytes, and frames whose precision does not match the
/// requested Real all return InvalidArgument (a cross-precision run is a
/// deployment error the protocol surfaces cleanly rather than reinterprets).
template <typename Real>
Result<FactorRowView<Real>> DecodeFactorRow(const uint8_t* data, size_t size);

/// Connection handshake, exchanged once per TCP connection (and validated
/// by the distributed solver on every backend): both ends must agree on
/// world size, latent dimensionality, and storage precision before any
/// token moves.
struct HelloFrame {
  int32_t rank = -1;  ///< Sender's rank in [0, world).
  int32_t world = 0;  ///< Sender's world size.
  int k = 0;          ///< Latent dimensionality (0 = not yet known).
  WirePrecision precision = WirePrecision::kF64;  ///< Factor storage.
  uint8_t codec = 0;  ///< Negotiated wire-codec stages as a
                      ///< WireCodecSpec byte (net/codec.h); 0 = none. Both
                      ///< ends must agree, exactly like k and precision.
};

/// Encodes a HelloFrame into `out` (cleared first). Layout:
/// [type u8][magic u32][rank i32][world i32][k u16][precision u8][codec u8].
void EncodeHello(const HelloFrame& hello, std::vector<uint8_t>* out);

/// Decodes and validates a HelloFrame (magic, exact length, known
/// precision, rank within world).
Result<HelloFrame> DecodeHello(const uint8_t* data, size_t size);

/// Control-message kinds of the distributed NOMAD protocol (see
/// docs/ARCHITECTURE.md, "Distributed layer", for the message flow).
/// Values are part of the wire contract.
enum class ControlKind : uint8_t {
  kBarrierRequest = 1,  ///< rank → 0: my local epoch threshold passed.
  kBarrierEnter = 2,    ///< 0 → all: quiesce workers, start the barrier.
  kTraceSync = 3,       ///< rank → 0: current held-token count (resent as
                        ///< in-flight tokens arrive, until conserved).
  kEvalStart = 4,       ///< 0 → all: every token accounted for; exchange
                        ///< h rows and evaluate.
  kHRowDone = 5,        ///< rank → all: sent all my held h rows (`count`).
  kPartialEval = 6,     ///< rank → 0: partial test-error sum + traffic.
  kResume = 7,          ///< 0 → all: trace point done; resume or stop.
  kWDone = 8,           ///< rank → 0: sent all my w rows (`count`).
  kShutdown = 9,        ///< 0 → all: final state gathered; disconnect.
  kHeartbeat = 10,      ///< transport-level liveness beacon; swallowed by
                        ///< the receiving endpoint, never surfaced to the
                        ///< solver.
  kDeathNotice = 11,    ///< 0 → all: rank `count` was declared dead; latch
                        ///< it, quiesce, and enter the recovery barrier.
  kTokenRegrant = 12,   ///< 0 → all: `count` lost tokens of dead rank
                        ///< `held` were re-materialized and redistributed.
  kLeaseSync = 13,      ///< survivor → all survivors: recovery channel
                        ///< flush marker carrying the sender's held-token
                        ///< count; per-pair FIFO makes everything sent
                        ///< before it visible once it arrives.
};

/// One decoded control message. The integer/real fields are a superset:
/// each kind documents which it uses (unused fields are encoded as zero).
struct ControlFrame {
  ControlKind kind = ControlKind::kBarrierRequest;  ///< Message kind.
  uint8_t flag = 0;      ///< kResume: 1 = stop training after this barrier.
  int32_t rank = -1;     ///< Sender's rank.
  int32_t epoch = 0;     ///< Barrier epoch the message belongs to.
  int64_t held = 0;      ///< kTraceSync: tokens currently held by sender.
  int64_t updates = 0;   ///< kTraceSync/kPartialEval: sender's local SGD
                         ///< update count; kResume: global sum.
  int64_t count = 0;     ///< kHRowDone/kWDone: rows the sender emitted;
                         ///< kPartialEval: test ratings in the partial sum.
  int64_t tokens_sent = 0;      ///< kPartialEval: sender's remote tokens out.
  int64_t tokens_received = 0;  ///< kPartialEval: remote tokens in.
  int64_t bytes_sent = 0;       ///< kPartialEval: transport bytes out.
  int64_t bytes_received = 0;   ///< kPartialEval: transport bytes in.
  double sq_err = 0.0;   ///< kPartialEval: partial squared-error sum;
                         ///< kResume: the aggregated global test RMSE.
  double seconds = 0.0;  ///< kTraceSync/kPartialEval: sender's training
                         ///< seconds; kResume: rank 0's training clock.
};

/// Encodes a ControlFrame into `out` (cleared first). Fixed 83-byte layout:
/// [type u8][kind u8][flag u8][rank i32][epoch i32][7 × i64][2 × f64].
void EncodeControl(const ControlFrame& frame, std::vector<uint8_t>* out);

/// Decodes a ControlFrame; wrong length or unknown kind is InvalidArgument.
Result<ControlFrame> DecodeControl(const uint8_t* data, size_t size);

}  // namespace net
}  // namespace nomad

#endif  // NOMAD_NET_WIRE_FORMAT_H_
