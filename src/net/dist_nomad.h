#ifndef NOMAD_NET_DIST_NOMAD_H_
#define NOMAD_NET_DIST_NOMAD_H_

#include <memory>
#include <vector>

#include "net/codec.h"
#include "net/transport.h"
#include "solver/solver.h"

namespace nomad {
namespace net {

/// Options of a distributed NOMAD rank. Every rank of a job must be
/// constructed with identical values (same dataset, same TrainOptions,
/// same remote fraction) — the protocol validates k/precision via the
/// transport hello but trusts the rest, exactly like an MPI job trusts its
/// launch script.
struct DistNomadOptions {
  /// The per-rank training configuration: `num_workers` worker threads per
  /// rank, and all the usual NOMAD knobs (routing, token batching, NUMA
  /// placement, precision) apply *within* the rank unchanged.
  /// `record_objective` is not yet supported distributed.
  TrainOptions train;
  /// Probability that a processed token leaves for a uniformly random
  /// remote rank instead of re-entering the local router. Negative (the
  /// default) selects (world-1)/world — the paper's Algorithm 2 behavior
  /// of a uniformly random worker across the whole cluster, which keeps
  /// the stationary token distribution identical to the single-process
  /// solver. Smaller values trade global mixing for less network traffic.
  double remote_token_fraction = -1.0;
  /// How many times a failed (Unavailable) send is retried — with
  /// exponential backoff — before the sender gives up: a worker keeps the
  /// token local, the driver escalates. Absorbs transient transport drops
  /// (see net/fault_transport.h) without any acknowledgement protocol.
  int send_retry_limit = 5;
  /// Wire-codec stages (net/codec.h) stacked over the transport: bf16/f16
  /// payload quantization, delta rows against the receiver's last-seen
  /// copy, batch coalescing. Every rank of a job must run the same spec —
  /// the TCP hello refuses mismatched peers; loopback trusts the launch,
  /// like the rest of these options. Default: none (frames unchanged).
  WireCodecSpec wire_codec;
};

/// Multi-process NOMAD with failure recovery (docs/ARCHITECTURE.md,
/// "Failure model"): when the transport detects a dead peer — heartbeat
/// timeout or TCP connection loss — rank 0 declares the death, survivors
/// quiesce and flush their channels, the tokens lost with the dead rank
/// are re-materialized from the freshest surviving h-row copies and
/// redistributed, the dead rank's user partition is adopted by the
/// survivors, and training resumes degraded. Rank 0's death is fatal
/// (non-goal), as is a world reduced to nothing.
///
/// Multi-process NOMAD (paper Sec. 2.2, Algorithm 2): users are partitioned
/// across ranks (and across each rank's workers), item tokens circulate
/// both within a rank — through the unchanged MpmcQueue + TokenRouter hot
/// path — and between ranks through a net::Transport carrying the token's
/// h_j row on the wire.
///
/// Each rank runs the familiar worker pool; a driver thread additionally
/// pumps the transport: inbound tokens are written into the local H and
/// enqueued, and trace points are coordinated barriers (rank 0 collects
/// held-token counts until every circulating token is accounted for, all
/// ranks exchange current h rows, each evaluates its own user range, and
/// rank 0 aggregates the global RMSE — so every rank returns the same
/// trace). At the final barrier rank 0 additionally gathers the w-row
/// partitions, so its TrainResult holds the complete model; every rank's
/// result holds the full (current) H. docs/ARCHITECTURE.md, "Distributed
/// layer", walks through the protocol.
class DistNomadSolver {
 public:
  /// Trains rank `transport->rank()`'s share of the factorization, using
  /// `transport` (already established, world = transport->world()) for
  /// cross-rank token hand-offs and barriers. Blocks until the whole job
  /// finishes. A world of 1 degenerates to single-process NOMAD with
  /// barrier-paced trace points. The transport is left open; the caller
  /// owns Close(). Returns InvalidArgument for malformed options.
  Result<TrainResult> Train(const Dataset& ds, const DistNomadOptions& options,
                            Transport* transport);
};

/// Convenience harness shared by the CLI, the bench, and the tests: runs a
/// `world`-rank job rank-per-thread over a fresh loopback fabric and
/// returns one Result per rank (index = rank). Blocks until every rank
/// finishes; a failing rank's error is returned in its slot, so callers
/// only differ in how they report a bad Result. Rank 0's result carries
/// the gathered model and the full traffic table.
std::vector<Result<TrainResult>> TrainLoopbackWorld(
    const Dataset& ds, const DistNomadOptions& options, int world);

/// Like TrainLoopbackWorld, but over caller-provided endpoints (one per
/// rank, already wired to each other) — the seam that lets tests, the CLI,
/// and the fault bench hand in a heartbeat-enabled loopback fabric with
/// some endpoints wrapped in a FaultInjectingTransport. Blocks until every
/// rank finishes; endpoints stay open (the caller owns Close()).
std::vector<Result<TrainResult>> TrainWorld(
    const Dataset& ds, const DistNomadOptions& options,
    std::vector<std::unique_ptr<Transport>>* endpoints);

}  // namespace net
}  // namespace nomad

#endif  // NOMAD_NET_DIST_NOMAD_H_
