#include "net/fault_transport.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <random>
#include <utility>

#include "net/wire_format.h"

namespace nomad {
namespace net {

namespace {

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool IsTokenFrame(const std::vector<uint8_t>& payload) {
  return !payload.empty() &&
         payload[0] == static_cast<uint8_t>(MsgType::kToken);
}

// Returns the ControlKind byte of a control frame, or -1 otherwise.
int ControlKindOf(const std::vector<uint8_t>& payload) {
  if (payload.size() < 2 ||
      payload[0] != static_cast<uint8_t>(MsgType::kControl)) {
    return -1;
  }
  return static_cast<int>(payload[1]);
}

}  // namespace

Result<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault plan: expected key=value, got '" +
                                     item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    char* parse_end = nullptr;
    const double num = std::strtod(val.c_str(), &parse_end);
    if (parse_end == val.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("fault plan: bad number '" + val +
                                     "' for key '" + key + "'");
    }
    if (key == "seed") {
      plan.seed = static_cast<uint64_t>(num);
    } else if (key == "drop") {
      plan.drop_rate = num;
    } else if (key == "dup") {
      plan.duplicate_rate = num;
    } else if (key == "delay") {
      plan.delay_rate = num;
    } else if (key == "delay-ops") {
      plan.delay_ops = static_cast<int>(num);
    } else if (key == "kill-after-sends") {
      plan.kill_after_sends = static_cast<int64_t>(num);
    } else if (key == "kill-after-seconds") {
      plan.kill_after_seconds = num;
    } else if (key == "kill-on-kind") {
      plan.kill_on_kind = static_cast<int>(num);
    } else if (key == "kill-on-count") {
      plan.kill_on_kind_count = static_cast<int>(num);
    } else if (key == "rank") {
      plan.target_rank = static_cast<int>(num);
    } else {
      return Status::InvalidArgument("fault plan: unknown key '" + key + "'");
    }
  }
  for (double rate : {plan.drop_rate, plan.duplicate_rate, plan.delay_rate}) {
    if (rate < 0.0 || rate > 1.0) {
      return Status::InvalidArgument(
          "fault plan: rates must lie in [0, 1]");
    }
  }
  if (plan.delay_ops < 1) {
    return Status::InvalidArgument("fault plan: delay-ops must be >= 1");
  }
  if (plan.kill_on_kind_count < 1) {
    return Status::InvalidArgument("fault plan: kill-on-count must be >= 1");
  }
  return plan;
}

struct FaultInjectingTransport::Impl {
  Impl(std::unique_ptr<Transport> b, FaultPlan p)
      : base(std::move(b)),
        plan(p),
        rng(p.seed),
        start_seconds(NowSeconds()) {}

  std::unique_ptr<Transport> base;
  const FaultPlan plan;

  std::mutex mu;
  std::mt19937_64 rng;                 // guarded by mu
  std::uniform_real_distribution<double> uniform{0.0, 1.0};
  int64_t ops = 0;                     // Send()+TryReceive() calls, for delays
  int64_t sends_accepted = 0;          // non-dropped Send() calls
  int64_t kind_hits = 0;               // kill_on_kind occurrences so far
  FaultStats faults;
  /// Token frames held back: released onto the base transport once `ops`
  /// passes release_op, so they arrive out of order relative to frames
  /// sent after them.
  struct Delayed {
    int64_t release_op;
    int dest;
    std::vector<uint8_t> frame;
  };
  std::deque<Delayed> delayed;

  const double start_seconds;
  std::atomic<bool> dead{false};

  /// Simulates the rank's process dying: the base transport closes (TCP
  /// peers see the connection drop; loopback peers see the heartbeats
  /// stop), and this endpoint refuses all further traffic. Call with mu
  /// held.
  void Die() {
    if (dead.exchange(true, std::memory_order_acq_rel)) return;
    base->Close();
  }

  /// Applies the wall-clock kill trigger; returns true when dead (already
  /// or newly). Call with mu held.
  bool CheckClockKill() {
    if (dead.load(std::memory_order_acquire)) return true;
    if (plan.kill_after_seconds >= 0.0 &&
        NowSeconds() - start_seconds >= plan.kill_after_seconds) {
      Die();
      return true;
    }
    return false;
  }

  /// Releases every delayed frame whose hold expired. Call with mu held.
  void FlushDelayed() {
    while (!delayed.empty() && delayed.front().release_op <= ops) {
      Delayed d = std::move(delayed.front());
      delayed.pop_front();
      // A failed release is indistinguishable from a drop of the delayed
      // frame; the solver's retry already covers lost tokens.
      base->Send(d.dest, std::move(d.frame));
    }
  }
};

FaultInjectingTransport::FaultInjectingTransport(
    std::unique_ptr<Transport> base, FaultPlan plan)
    : impl_(std::make_unique<Impl>(std::move(base), plan)) {}

FaultInjectingTransport::~FaultInjectingTransport() = default;

int FaultInjectingTransport::rank() const { return impl_->base->rank(); }
int FaultInjectingTransport::world() const { return impl_->base->world(); }

Status FaultInjectingTransport::Send(int dest, std::vector<uint8_t> frame) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  ++im.ops;
  if (im.CheckClockKill()) {
    return Status::Unavailable("fault: this rank was killed by its plan");
  }
  im.FlushDelayed();

  if (im.plan.drop_rate > 0.0 && im.uniform(im.rng) < im.plan.drop_rate) {
    ++im.faults.drops;
    return Status::Unavailable("fault: injected drop");
  }

  const bool token = IsTokenFrame(frame);
  if (token && im.plan.delay_rate > 0.0 &&
      im.uniform(im.rng) < im.plan.delay_rate) {
    ++im.faults.delays;
    im.delayed.push_back(
        Impl::Delayed{im.ops + im.plan.delay_ops, dest, std::move(frame)});
    ++im.sends_accepted;
    return Status::OK();
  }

  const bool duplicate = token && im.plan.duplicate_rate > 0.0 &&
                         im.uniform(im.rng) < im.plan.duplicate_rate;
  if (duplicate) {
    ++im.faults.duplicates;
    im.base->Send(dest, frame);  // copy; the "real" send below moves
  }

  const int kind = ControlKindOf(frame);
  Status sent = im.base->Send(dest, std::move(frame));
  if (!sent.ok()) return sent;
  ++im.sends_accepted;

  // Kill triggers fire after the triggering frame is forwarded, so e.g.
  // kill-on-kind=<kTraceSync> dies with the trace-sync frame already on
  // the wire — mid-barrier, the hardest point for recovery.
  if (im.plan.kill_after_sends >= 0 &&
      im.sends_accepted >= im.plan.kill_after_sends) {
    im.Die();
  }
  if (im.plan.kill_on_kind != 0 && kind == im.plan.kill_on_kind &&
      ++im.kind_hits >= im.plan.kill_on_kind_count) {
    im.Die();
  }
  return Status::OK();
}

bool FaultInjectingTransport::TryReceive(std::vector<uint8_t>* frame,
                                         int* src) {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    ++im.ops;
    if (im.CheckClockKill()) return false;
    im.FlushDelayed();
  }
  return im.base->TryReceive(frame, src);
}

TransportStats FaultInjectingTransport::stats() const {
  return impl_->base->stats();
}

PeerStatus FaultInjectingTransport::peer_status(int peer) const {
  // A killed endpoint is cut off from everyone: reporting every peer dead
  // lets the killed rank notice rank 0 is unreachable and error out of its
  // wait loops instead of hanging on a closed transport.
  if (impl_->dead.load(std::memory_order_acquire)) return PeerStatus::kDead;
  return impl_->base->peer_status(peer);
}

Status FaultInjectingTransport::Close() { return impl_->base->Close(); }

bool FaultInjectingTransport::killed() const {
  return impl_->dead.load(std::memory_order_acquire);
}

const FaultPlan& FaultInjectingTransport::plan() const { return impl_->plan; }

FaultInjectingTransport::FaultStats FaultInjectingTransport::fault_stats()
    const {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lock(im.mu);
  return im.faults;
}

void ApplyFaultPlan(std::vector<std::unique_ptr<Transport>>* endpoints,
                    const FaultPlan& plan) {
  for (size_t r = 0; r < endpoints->size(); ++r) {
    if (plan.target_rank >= 0 && static_cast<int>(r) != plan.target_rank) {
      continue;
    }
    (*endpoints)[r] = std::make_unique<FaultInjectingTransport>(
        std::move((*endpoints)[r]), plan);
  }
}

}  // namespace net
}  // namespace nomad
