#include "net/transport.h"

namespace nomad {
namespace net {

Status Transport::Broadcast(const std::vector<uint8_t>& frame) {
  for (int r = 0; r < world(); ++r) {
    if (r == rank()) continue;
    NOMAD_RETURN_IF_ERROR(Send(r, frame));
  }
  return Status::OK();
}

}  // namespace net
}  // namespace nomad
