#ifndef NOMAD_BASELINES_HOGWILD_H_
#define NOMAD_BASELINES_HOGWILD_H_

#include "solver/solver.h"

namespace nomad {

/// Hogwild! (Recht et al., Sec. 4.2/4.3 of the paper): every worker thread
/// samples training ratings uniformly at random and applies SGD updates to
/// the shared W and H with no synchronization at all. Updates race — the
/// algorithm is asynchronous but NOT serializable, which is exactly the
/// contrast the paper draws with NOMAD. The races are benign at the numeric
/// level (lost updates, torn reads) and tolerated by design.
class HogwildSolver final : public Solver {
 public:
  std::string Name() const override { return "hogwild"; }

  Result<TrainResult> Train(const Dataset& ds,
                            const TrainOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_BASELINES_HOGWILD_H_
