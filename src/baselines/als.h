#ifndef NOMAD_BASELINES_ALS_H_
#define NOMAD_BASELINES_ALS_H_

#include "solver/solver.h"

namespace nomad {

/// Alternating Least Squares (Zhou et al. 2008; paper Sec. 2.1): each epoch
/// solves every user's ridge system w_i ← (HᵀΩᵢHΩᵢ + λ|Ω_i| I)⁻¹ Hᵀa_i
/// exactly via Cholesky (Eq. 3), then every item's symmetric system. Rows
/// (and then columns) are embarrassingly parallel with a barrier between
/// the two half-sweeps.
class AlsSolver final : public Solver {
 public:
  std::string Name() const override { return "als"; }

  Result<TrainResult> Train(const Dataset& ds,
                            const TrainOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_BASELINES_ALS_H_
