#include "baselines/dsgdpp.h"

#include <utility>
#include <vector>

#include "baselines/block_grid.h"
#include "solver/epoch_loop.h"
#include "solver/sgd_kernel.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nomad {

namespace {

template <typename Real>
Result<TrainResult> TrainImpl(const Dataset& ds, const TrainOptions& options,
                              const std::string& name) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options));
  auto schedule = MakeSchedule(options.schedule, options.alpha, options.beta);
  if (!schedule.ok()) return schedule.status();
  auto loss = ResolveLoss(options.loss);
  if (!loss.ok()) return loss.status();

  TrainResult result;
  result.solver_name = name;
  result.precision = options.precision;
  FactorMatrixT<Real> w;
  FactorMatrixT<Real> h;
  InitFactorsT<Real>(ds, options, &w, &h);
  const int p = options.num_workers;
  const int k = options.rank;
  const int cblocks = 2 * p;

  const UserPartition row_part = UserPartition::ByRatings(ds.train, p);
  const UserPartition col_part = UserPartition::ByRows(ds.cols, cblocks);
  const BlockGrid grid = BlockGrid::Build(ds.train, row_part, col_part);

  StepCounts counts(ds.train.nnz());
  BoldDriver driver(options.alpha);
  const UpdateKernelT<Real> kernel(*schedule.value(), loss.value().get(),
                                   options.lambda, k);
  ThreadPool pool(p);
  EpochLoopT<Real> loop(ds, options, w, h, &result, &pool);
  int epoch = 0;
  while (loop.Continue()) {
    for (int s = 0; s < cblocks; ++s) {
      for (int q = 0; q < p; ++q) {
        // In stratum s the p active column-blocks are the consecutive range
        // {s, ..., s+p-1} (mod 2p): disjoint within the stratum, and every
        // worker covers all 2p blocks across an epoch.
        const int cb = (q + s) % cblocks;
        pool.Submit([&, q, cb, s] {
          Rng rng(options.seed + 131ULL * static_cast<uint64_t>(epoch) +
                  29ULL * static_cast<uint64_t>(q) + static_cast<uint64_t>(s));
          const auto& block = grid.Block(q, cb);
          std::vector<int32_t> order(block.size());
          for (size_t i = 0; i < block.size(); ++i) {
            order[i] = static_cast<int32_t>(i);
          }
          rng.Shuffle(&order);
          for (int32_t idx : order) {
            const BlockEntry& e = block[static_cast<size_t>(idx)];
            if (options.bold_driver) {
              kernel.ApplyWithStep(e.value, driver.step(), w.Row(e.row),
                                   h.Row(e.col));
            } else {
              kernel.Apply(e.value, &counts, e.pos, w.Row(e.row),
                           h.Row(e.col));
            }
          }
        });
      }
      pool.Wait();
    }
    const double obj = loop.EndEpoch(ds.train.nnz(), options.bold_driver);
    if (options.bold_driver) driver.EndEpoch(obj);
    ++epoch;
  }
  StoreTrainedFactors(std::move(w), std::move(h), &result);
  return result;
}

}  // namespace

Result<TrainResult> DsgdppSolver::Train(const Dataset& ds,
                                        const TrainOptions& options) {
  return DispatchPrecision(options.precision, [&](auto zero) {
    return TrainImpl<decltype(zero)>(ds, options, Name());
  });
}

}  // namespace nomad
