#ifndef NOMAD_BASELINES_SERIAL_SGD_H_
#define NOMAD_BASELINES_SERIAL_SGD_H_

#include "solver/solver.h"

namespace nomad {

/// Single-threaded SGD (Sec. 2.3): per epoch, visit every training rating
/// once in a fresh random order and apply the Eq. (9)-(10) update pair with
/// the Eq. (11) schedule. Ignores num_workers.
///
/// Serves as (a) the single-core reference point of the scaling studies and
/// (b) the replay oracle for NOMAD's serializability property test.
class SerialSgdSolver final : public Solver {
 public:
  std::string Name() const override { return "serial_sgd"; }

  Result<TrainResult> Train(const Dataset& ds,
                            const TrainOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_BASELINES_SERIAL_SGD_H_
