#ifndef NOMAD_BASELINES_BLOCK_GRID_H_
#define NOMAD_BASELINES_BLOCK_GRID_H_

#include <cstdint>
#include <vector>

#include "data/shard.h"
#include "data/sparse_matrix.h"

namespace nomad {

/// One training rating inside a block, with its global CSC position for
/// per-rating step-count lookup.
struct BlockEntry {
  int32_t row;
  int32_t col;
  float value;
  int64_t pos;
};

/// The rating matrix cut into a grid of row-blocks × column-blocks — the
/// data layout underlying DSGD (p×p), DSGD++ (p×2p) and FPSGD** (p'×p');
/// see the paper's Figure 4 comparison of partitioning schemes.
class BlockGrid {
 public:
  BlockGrid() = default;

  /// Builds the grid. Row blocks follow `row_part`, column blocks follow
  /// `col_part` (both are 1-D contiguous partitions).
  static BlockGrid Build(const SparseMatrix& train,
                         const UserPartition& row_part,
                         const UserPartition& col_part);

  int row_blocks() const { return row_blocks_; }
  int col_blocks() const { return col_blocks_; }

  const std::vector<BlockEntry>& Block(int rb, int cb) const {
    return blocks_[static_cast<size_t>(rb) * col_blocks_ +
                   static_cast<size_t>(cb)];
  }

  int64_t TotalEntries() const;

 private:
  int row_blocks_ = 0;
  int col_blocks_ = 0;
  std::vector<std::vector<BlockEntry>> blocks_;
};

inline BlockGrid BlockGrid::Build(const SparseMatrix& train,
                                  const UserPartition& row_part,
                                  const UserPartition& col_part) {
  BlockGrid g;
  g.row_blocks_ = row_part.num_workers();
  g.col_blocks_ = col_part.num_workers();
  g.blocks_.resize(static_cast<size_t>(g.row_blocks_) *
                   static_cast<size_t>(g.col_blocks_));
  for (int32_t j = 0; j < train.cols(); ++j) {
    const int cb = col_part.OwnerOf(j);
    const int32_t n = train.ColNnz(j);
    const int32_t* rows = train.ColRows(j);
    const float* vals = train.ColVals(j);
    const int64_t off = train.ColOffset(j);
    for (int32_t t = 0; t < n; ++t) {
      const int rb = row_part.OwnerOf(rows[t]);
      g.blocks_[static_cast<size_t>(rb) * g.col_blocks_ +
                static_cast<size_t>(cb)]
          .push_back(BlockEntry{rows[t], j, vals[t], off + t});
    }
  }
  return g;
}

inline int64_t BlockGrid::TotalEntries() const {
  int64_t total = 0;
  for (const auto& b : blocks_) total += static_cast<int64_t>(b.size());
  return total;
}

}  // namespace nomad

#endif  // NOMAD_BASELINES_BLOCK_GRID_H_
