#ifndef NOMAD_BASELINES_CCDPP_H_
#define NOMAD_BASELINES_CCDPP_H_

#include "solver/solver.h"

namespace nomad {

/// CCD++ (Yu et al. 2012; paper Sec. 2.2): feature-wise cyclic coordinate
/// descent with an explicitly maintained residual matrix R = A − W Hᵀ.
/// For each latent feature l, the rank-one subproblem over (w_{·l}, h_{·l})
/// is solved by `ccd_inner_iters` alternating closed-form sweeps:
///
///   w_il ← Σ_{j∈Ω_i} R̂_ij h_jl / (λ|Ω_i| + Σ_{j∈Ω_i} h_jl²)
///
/// (and symmetrically for h_jl), where R̂ = R + w_{·l} h_{·l}ᵀ.
/// Row and column sweeps are data-parallel across workers with a barrier
/// between them — the bulk-synchronous structure the paper contrasts NOMAD
/// against. One epoch = one sweep over all k features.
class CcdppSolver final : public Solver {
 public:
  std::string Name() const override { return "ccdpp"; }

  Result<TrainResult> Train(const Dataset& ds,
                            const TrainOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_BASELINES_CCDPP_H_
