#include "baselines/hogwild.h"

#include <thread>
#include <utility>
#include <vector>

#include "solver/epoch_loop.h"
#include "solver/sgd_kernel.h"
#include "util/rng.h"

namespace nomad {

namespace {

template <typename Real>
Result<TrainResult> TrainImpl(const Dataset& ds, const TrainOptions& options,
                              const std::string& name) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options));
  auto schedule = MakeSchedule(options.schedule, options.alpha, options.beta);
  if (!schedule.ok()) return schedule.status();
  auto loss = ResolveLoss(options.loss);
  if (!loss.ok()) return loss.status();

  TrainResult result;
  result.solver_name = name;
  result.precision = options.precision;
  FactorMatrixT<Real> w;
  FactorMatrixT<Real> h;
  InitFactorsT<Real>(ds, options, &w, &h);
  const int k = options.rank;
  const int p = options.num_workers;

  struct Obs {
    int32_t row;
    int32_t col;
    float value;
  };
  const int64_t nnz = ds.train.nnz();
  if (nnz == 0) {
    EpochLoopT<Real> loop(ds, options, w, h, &result);
    loop.EndEpoch(0);
    StoreTrainedFactors(std::move(w), std::move(h), &result);
    return result;
  }
  std::vector<Obs> obs;
  obs.reserve(static_cast<size_t>(nnz));
  for (int32_t j = 0; j < ds.cols; ++j) {
    const int32_t n = ds.train.ColNnz(j);
    const int32_t* rows = ds.train.ColRows(j);
    const float* vals = ds.train.ColVals(j);
    for (int32_t t = 0; t < n; ++t) obs.push_back(Obs{rows[t], j, vals[t]});
  }

  // Per-rating step counts are shared without atomics: the data race on a
  // counter merely loses an occasional increment, slightly slowing the
  // schedule decay — consistent with Hogwild's benign-race philosophy.
  StepCounts counts(nnz);
  const UpdateKernelT<Real> kernel(*schedule.value(), loss.value().get(),
                                   options.lambda, k);

  EpochLoopT<Real> loop(ds, options, w, h, &result);
  while (loop.Continue()) {
    const int64_t per_worker = (nnz + p - 1) / p;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(p));
    for (int q = 0; q < p; ++q) {
      threads.emplace_back([&, q] {
        Rng rng(options.seed + 1000003ULL * static_cast<uint64_t>(q + 1) +
                static_cast<uint64_t>(loop.epochs_done()));
        for (int64_t u = 0; u < per_worker; ++u) {
          const int64_t pos =
              static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(nnz)));
          const Obs& o = obs[static_cast<size_t>(pos)];
          kernel.Apply(o.value, &counts, pos, w.Row(o.row), h.Row(o.col));
        }
      });
    }
    for (auto& t : threads) t.join();
    loop.EndEpoch(per_worker * p);
  }
  StoreTrainedFactors(std::move(w), std::move(h), &result);
  return result;
}

}  // namespace

Result<TrainResult> HogwildSolver::Train(const Dataset& ds,
                                         const TrainOptions& options) {
  return DispatchPrecision(options.precision, [&](auto zero) {
    return TrainImpl<decltype(zero)>(ds, options, Name());
  });
}

}  // namespace nomad
