#ifndef NOMAD_BASELINES_CCD_CORE_H_
#define NOMAD_BASELINES_CCD_CORE_H_

#include <vector>

#include "data/sparse_matrix.h"
#include "linalg/factor_matrix.h"
#include "util/thread_pool.h"

namespace nomad {

/// The numerical core of CCD++ (Yu et al. 2012), shared by the threaded
/// baseline (CcdppSolver) and the cluster simulator (SimCcdppSolver):
/// feature-wise rank-one coordinate descent with an explicitly maintained
/// residual R = A − W Hᵀ.
///
/// Templated on the factor storage precision. The residual and the
/// rank-one numerator/denominator sums always live in double — CCD++'s
/// convergence rests on the residual staying consistent across k sweeps,
/// and a float residual drifts visibly after a few epochs — so float
/// storage only rounds the factor entries themselves.
///
/// Thread-parallel when given a pool, bit-identical serial when pool is
/// null — CCD++ is bulk-synchronous, so both modes produce the same
/// trajectory (a property the tests assert).
template <typename Real>
class CcdppEngineT {
 public:
  /// `w` and `h` must outlive the engine and already be initialized;
  /// the constructor computes the initial residual.
  CcdppEngineT(const SparseMatrix& train, double lambda,
               FactorMatrixT<Real>* w, FactorMatrixT<Real>* h,
               ThreadPool* pool);

  /// One epoch: for each latent feature, `inner_iters` alternating
  /// closed-form sweeps over w_{·l} and h_{·l}.
  void SweepEpoch(int inner_iters);

  /// Ratings touched per epoch (for work accounting).
  int64_t EpochWork(int inner_iters) const {
    return train_.nnz() * static_cast<int64_t>(w_->cols()) * inner_iters;
  }

 private:
  void AddRankOneBack(int l);
  void SubtractRankOne(int l);
  void RowSweep(int l);
  void ColSweep(int l);

  const SparseMatrix& train_;
  const double lambda_;
  FactorMatrixT<Real>* w_;
  FactorMatrixT<Real>* h_;
  ThreadPool* pool_;  // may be null (serial)

  std::vector<double> residual_;     // CSR order
  std::vector<int64_t> csc_to_csr_;  // CSC slot -> CSR slot
  std::vector<int64_t> row_offset_;  // CSR row offsets
};

using CcdppEngine = CcdppEngineT<double>;
using CcdppEngineF = CcdppEngineT<float>;

extern template class CcdppEngineT<float>;
extern template class CcdppEngineT<double>;

}  // namespace nomad

#endif  // NOMAD_BASELINES_CCD_CORE_H_
