#ifndef NOMAD_BASELINES_CCD_CORE_H_
#define NOMAD_BASELINES_CCD_CORE_H_

#include <vector>

#include "data/sparse_matrix.h"
#include "linalg/factor_matrix.h"
#include "util/thread_pool.h"

namespace nomad {

/// The numerical core of CCD++ (Yu et al. 2012), shared by the threaded
/// baseline (CcdppSolver) and the cluster simulator (SimCcdppSolver):
/// feature-wise rank-one coordinate descent with an explicitly maintained
/// residual R = A − W Hᵀ.
///
/// Thread-parallel when given a pool, bit-identical serial when pool is
/// null — CCD++ is bulk-synchronous, so both modes produce the same
/// trajectory (a property the tests assert).
class CcdppEngine {
 public:
  /// `w` and `h` must outlive the engine and already be initialized;
  /// the constructor computes the initial residual.
  CcdppEngine(const SparseMatrix& train, double lambda, FactorMatrix* w,
              FactorMatrix* h, ThreadPool* pool);

  /// One epoch: for each latent feature, `inner_iters` alternating
  /// closed-form sweeps over w_{·l} and h_{·l}.
  void SweepEpoch(int inner_iters);

  /// Ratings touched per epoch (for work accounting).
  int64_t EpochWork(int inner_iters) const {
    return train_.nnz() * static_cast<int64_t>(w_->cols()) * inner_iters;
  }

 private:
  void AddRankOneBack(int l);
  void SubtractRankOne(int l);
  void RowSweep(int l);
  void ColSweep(int l);

  const SparseMatrix& train_;
  const double lambda_;
  FactorMatrix* w_;
  FactorMatrix* h_;
  ThreadPool* pool_;  // may be null (serial)

  std::vector<double> residual_;     // CSR order
  std::vector<int64_t> csc_to_csr_;  // CSC slot -> CSR slot
  std::vector<int64_t> row_offset_;  // CSR row offsets
};

}  // namespace nomad

#endif  // NOMAD_BASELINES_CCD_CORE_H_
