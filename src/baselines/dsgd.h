#ifndef NOMAD_BASELINES_DSGD_H_
#define NOMAD_BASELINES_DSGD_H_

#include "solver/solver.h"

namespace nomad {

/// DSGD (Gemulla et al. 2011; paper Sec. 4.1): the rating matrix is cut
/// into p×p blocks. An epoch consists of p bulk-synchronous strata; in
/// stratum s, worker q processes block (q, (q+s) mod p), so the p active
/// blocks never share a row- or column-block. Every stratum ends with a
/// barrier — the "curse of the last reducer" the paper contrasts NOMAD
/// against.
///
/// Step sizes: with options.bold_driver (the paper's configuration for
/// DSGD) the step adapts per epoch from the training objective; otherwise
/// the per-rating Eq. (11) schedule is used.
class DsgdSolver final : public Solver {
 public:
  std::string Name() const override { return "dsgd"; }

  Result<TrainResult> Train(const Dataset& ds,
                            const TrainOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_BASELINES_DSGD_H_
