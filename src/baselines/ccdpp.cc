#include "baselines/ccdpp.h"

#include "baselines/ccd_core.h"
#include "solver/epoch_loop.h"
#include "util/thread_pool.h"

namespace nomad {

Result<TrainResult> CcdppSolver::Train(const Dataset& ds,
                                       const TrainOptions& options) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options));
  if (options.loss != "squared" && !options.loss.empty()) {
    return Status::InvalidArgument(Name() +
                                   " supports only the squared loss");
  }
  if (options.ccd_inner_iters < 1) {
    return Status::InvalidArgument("ccd_inner_iters must be >= 1");
  }

  TrainResult result;
  result.solver_name = Name();
  InitFactors(ds, options, &result.w, &result.h);

  ThreadPool pool(options.num_workers);
  CcdppEngine engine(ds.train, options.lambda, &result.w, &result.h, &pool);

  EpochLoop loop(ds, options, &result);
  while (loop.Continue()) {
    engine.SweepEpoch(options.ccd_inner_iters);
    loop.EndEpoch(engine.EpochWork(options.ccd_inner_iters));
  }
  return result;
}

}  // namespace nomad
