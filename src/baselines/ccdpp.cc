#include "baselines/ccdpp.h"

#include <utility>

#include "baselines/ccd_core.h"
#include "solver/epoch_loop.h"
#include "util/thread_pool.h"

namespace nomad {

namespace {

template <typename Real>
Result<TrainResult> TrainImpl(const Dataset& ds, const TrainOptions& options,
                              const std::string& name) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options));
  if (options.loss != "squared" && !options.loss.empty()) {
    return Status::InvalidArgument(name + " supports only the squared loss");
  }
  if (options.ccd_inner_iters < 1) {
    return Status::InvalidArgument("ccd_inner_iters must be >= 1");
  }

  TrainResult result;
  result.solver_name = name;
  result.precision = options.precision;
  FactorMatrixT<Real> w;
  FactorMatrixT<Real> h;
  InitFactorsT<Real>(ds, options, &w, &h);

  ThreadPool pool(options.num_workers);
  CcdppEngineT<Real> engine(ds.train, options.lambda, &w, &h, &pool);

  EpochLoopT<Real> loop(ds, options, w, h, &result, &pool);
  while (loop.Continue()) {
    engine.SweepEpoch(options.ccd_inner_iters);
    loop.EndEpoch(engine.EpochWork(options.ccd_inner_iters));
  }
  StoreTrainedFactors(std::move(w), std::move(h), &result);
  return result;
}

}  // namespace

Result<TrainResult> CcdppSolver::Train(const Dataset& ds,
                                       const TrainOptions& options) {
  return DispatchPrecision(options.precision, [&](auto zero) {
    return TrainImpl<decltype(zero)>(ds, options, Name());
  });
}

}  // namespace nomad
