#ifndef NOMAD_BASELINES_FPSGD_H_
#define NOMAD_BASELINES_FPSGD_H_

#include "solver/solver.h"

namespace nomad {

/// FPSGD** (Zhuang et al. 2013; paper Sec. 4.1): shared-memory SGD where
/// the matrix is cut into p'×p' blocks with p' > p and a task manager hands
/// free blocks to idle workers. A block is *free* when no running block
/// shares its row- or column-range; among free blocks the manager prefers
/// the least-processed ones (randomly breaking ties), which both load-
/// balances and keeps update counts even.
///
/// p' = fpsgd_grid_factor * p + 1 (the paper's suggestion of "more than p"
/// sets; LibMF uses 2p×2p by default — grid_factor=2 reproduces that
/// spirit). Within an epoch every block is processed exactly once.
class FpsgdSolver final : public Solver {
 public:
  std::string Name() const override { return "fpsgd"; }

  Result<TrainResult> Train(const Dataset& ds,
                            const TrainOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_BASELINES_FPSGD_H_
