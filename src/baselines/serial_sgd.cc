#include "baselines/serial_sgd.h"

#include <utility>
#include <vector>

#include "solver/epoch_loop.h"
#include "solver/sgd_kernel.h"
#include "util/rng.h"

namespace nomad {

namespace {

template <typename Real>
Result<TrainResult> TrainImpl(const Dataset& ds, const TrainOptions& options,
                              const std::string& name) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options));
  auto schedule = MakeSchedule(options.schedule, options.alpha, options.beta);
  if (!schedule.ok()) return schedule.status();
  auto loss = ResolveLoss(options.loss);
  if (!loss.ok()) return loss.status();

  TrainResult result;
  result.solver_name = name;
  result.precision = options.precision;
  FactorMatrixT<Real> w;
  FactorMatrixT<Real> h;
  InitFactorsT<Real>(ds, options, &w, &h);
  const int k = options.rank;

  // Flatten training ratings in CSC order so positions key the step counts.
  struct Obs {
    int32_t row;
    int32_t col;
    float value;
  };
  const int64_t nnz = ds.train.nnz();
  std::vector<Obs> obs;
  obs.reserve(static_cast<size_t>(nnz));
  for (int32_t j = 0; j < ds.cols; ++j) {
    const int32_t n = ds.train.ColNnz(j);
    const int32_t* rows = ds.train.ColRows(j);
    const float* vals = ds.train.ColVals(j);
    for (int32_t t = 0; t < n; ++t) {
      obs.push_back(Obs{rows[t], j, vals[t]});
    }
  }
  std::vector<int64_t> order(static_cast<size_t>(nnz));
  for (int64_t i = 0; i < nnz; ++i) order[static_cast<size_t>(i)] = i;

  StepCounts counts(nnz);
  const UpdateKernelT<Real> kernel(*schedule.value(), loss.value().get(),
                                   options.lambda, k);
  Rng rng(options.seed + 13);
  EpochLoopT<Real> loop(ds, options, w, h, &result);
  while (loop.Continue()) {
    rng.Shuffle(&order);
    for (int64_t pos : order) {
      const Obs& o = obs[static_cast<size_t>(pos)];
      kernel.Apply(o.value, &counts, pos, w.Row(o.row), h.Row(o.col));
    }
    loop.EndEpoch(nnz);
  }
  StoreTrainedFactors(std::move(w), std::move(h), &result);
  return result;
}

}  // namespace

Result<TrainResult> SerialSgdSolver::Train(const Dataset& ds,
                                           const TrainOptions& options) {
  return DispatchPrecision(options.precision, [&](auto zero) {
    return TrainImpl<decltype(zero)>(ds, options, Name());
  });
}

}  // namespace nomad
