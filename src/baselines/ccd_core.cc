#include "baselines/ccd_core.h"

#include "linalg/dense_ops.h"

namespace nomad {

template <typename Real>
CcdppEngineT<Real>::CcdppEngineT(const SparseMatrix& train, double lambda,
                                 FactorMatrixT<Real>* w, FactorMatrixT<Real>* h,
                                 ThreadPool* pool)
    : train_(train), lambda_(lambda), w_(w), h_(h), pool_(pool) {
  const int64_t nnz = train.nnz();
  const int k = w_->cols();
  residual_.resize(static_cast<size_t>(nnz));
  csc_to_csr_.resize(static_cast<size_t>(nnz));
  row_offset_.assign(static_cast<size_t>(train.rows()) + 1, 0);
  for (int32_t i = 0; i < train.rows(); ++i) {
    row_offset_[static_cast<size_t>(i) + 1] =
        row_offset_[static_cast<size_t>(i)] + train.RowNnz(i);
  }
  {
    std::vector<int64_t> next(static_cast<size_t>(train.cols()));
    for (int32_t j = 0; j < train.cols(); ++j) {
      next[static_cast<size_t>(j)] = train.ColOffset(j);
    }
    int64_t csr_pos = 0;
    for (int32_t i = 0; i < train.rows(); ++i) {
      const int32_t n = train.RowNnz(i);
      const int32_t* cols = train.RowCols(i);
      for (int32_t t = 0; t < n; ++t, ++csr_pos) {
        csc_to_csr_[static_cast<size_t>(
            next[static_cast<size_t>(cols[t])]++)] = csr_pos;
      }
    }
  }
  ParallelFor(pool_, 0, train.rows(), [&](int64_t i) {
    const int32_t row = static_cast<int32_t>(i);
    const int32_t n = train.RowNnz(row);
    const int32_t* cols = train.RowCols(row);
    const float* vals = train.RowVals(row);
    int64_t pos = row_offset_[static_cast<size_t>(row)];
    for (int32_t t = 0; t < n; ++t, ++pos) {
      residual_[static_cast<size_t>(pos)] =
          static_cast<double>(vals[t]) -
          static_cast<double>(Dot(w_->Row(row), h_->Row(cols[t]), k));
    }
  });
}

template <typename Real>
void CcdppEngineT<Real>::AddRankOneBack(int l) {
  ParallelFor(pool_, 0, train_.rows(), [&](int64_t i) {
    const int32_t row = static_cast<int32_t>(i);
    const double wil = w_->At(row, l);
    const int32_t n = train_.RowNnz(row);
    const int32_t* cols = train_.RowCols(row);
    int64_t pos = row_offset_[static_cast<size_t>(row)];
    for (int32_t t = 0; t < n; ++t, ++pos) {
      residual_[static_cast<size_t>(pos)] += wil * h_->At(cols[t], l);
    }
  });
}

template <typename Real>
void CcdppEngineT<Real>::SubtractRankOne(int l) {
  ParallelFor(pool_, 0, train_.rows(), [&](int64_t i) {
    const int32_t row = static_cast<int32_t>(i);
    const double wil = w_->At(row, l);
    const int32_t n = train_.RowNnz(row);
    const int32_t* cols = train_.RowCols(row);
    int64_t pos = row_offset_[static_cast<size_t>(row)];
    for (int32_t t = 0; t < n; ++t, ++pos) {
      residual_[static_cast<size_t>(pos)] -= wil * h_->At(cols[t], l);
    }
  });
}

template <typename Real>
void CcdppEngineT<Real>::RowSweep(int l) {
  ParallelFor(pool_, 0, train_.rows(), [&](int64_t i) {
    const int32_t row = static_cast<int32_t>(i);
    const int32_t n = train_.RowNnz(row);
    if (n == 0) return;
    const int32_t* cols = train_.RowCols(row);
    double num = 0.0;
    double den = lambda_ * n;
    int64_t pos = row_offset_[static_cast<size_t>(row)];
    for (int32_t t = 0; t < n; ++t, ++pos) {
      const double hjl = h_->At(cols[t], l);
      num += residual_[static_cast<size_t>(pos)] * hjl;
      den += hjl * hjl;
    }
    w_->At(row, l) = static_cast<Real>(num / den);
  });
}

template <typename Real>
void CcdppEngineT<Real>::ColSweep(int l) {
  ParallelFor(pool_, 0, train_.cols(), [&](int64_t j) {
    const int32_t col = static_cast<int32_t>(j);
    const int32_t n = train_.ColNnz(col);
    if (n == 0) return;
    const int32_t* rows = train_.ColRows(col);
    const int64_t off = train_.ColOffset(col);
    double num = 0.0;
    double den = lambda_ * n;
    for (int32_t t = 0; t < n; ++t) {
      const double wil = w_->At(rows[t], l);
      num += residual_[static_cast<size_t>(
                 csc_to_csr_[static_cast<size_t>(off + t)])] *
             wil;
      den += wil * wil;
    }
    h_->At(col, l) = static_cast<Real>(num / den);
  });
}

template <typename Real>
void CcdppEngineT<Real>::SweepEpoch(int inner_iters) {
  const int k = w_->cols();
  for (int l = 0; l < k; ++l) {
    AddRankOneBack(l);
    for (int inner = 0; inner < inner_iters; ++inner) {
      RowSweep(l);
      ColSweep(l);
    }
    SubtractRankOne(l);
  }
}

template class CcdppEngineT<float>;
template class CcdppEngineT<double>;

}  // namespace nomad
