#ifndef NOMAD_BASELINES_DSGDPP_H_
#define NOMAD_BASELINES_DSGDPP_H_

#include "solver/solver.h"

namespace nomad {

/// DSGD++ (Teflioudi et al. 2012; paper Sec. 4.1): like DSGD but with p×2p
/// blocks, so that while the p workers compute on p column-blocks, the
/// other p column-blocks are "in flight" — overlapping communication with
/// computation. In shared memory the overlap is free; the distributed
/// overlap behaviour is modelled faithfully by the simulator counterpart
/// (SimDsgdpp). An epoch is 2p strata with a barrier after each.
class DsgdppSolver final : public Solver {
 public:
  std::string Name() const override { return "dsgdpp"; }

  Result<TrainResult> Train(const Dataset& ds,
                            const TrainOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_BASELINES_DSGDPP_H_
