#include "baselines/fpsgd.h"

#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/block_grid.h"
#include "solver/epoch_loop.h"
#include "solver/sgd_kernel.h"
#include "util/rng.h"

namespace nomad {

namespace {

/// The FPSGD task manager: tracks which row/column ranges are busy and
/// which blocks remain this epoch, and hands out free blocks preferring
/// the globally least-processed ones.
class TaskManager {
 public:
  TaskManager(int grid, uint64_t seed) : grid_(grid), rng_(seed) {
    lifetime_count_.assign(static_cast<size_t>(grid) * grid, 0);
  }

  void StartEpoch() {
    std::lock_guard<std::mutex> lock(mu_);
    remaining_.assign(static_cast<size_t>(grid_) * grid_, true);
    remaining_count_ = grid_ * grid_;
    row_busy_.assign(static_cast<size_t>(grid_), false);
    col_busy_.assign(static_cast<size_t>(grid_), false);
  }

  /// Blocks until a free block is available or the epoch is exhausted.
  /// Returns false when the epoch is done.
  bool Acquire(int* rb, int* cb) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (remaining_count_ == 0) return false;
      int best_rb = -1;
      int best_cb = -1;
      int64_t best_count = 0;
      int ties = 0;
      for (int r = 0; r < grid_; ++r) {
        if (row_busy_[static_cast<size_t>(r)]) continue;
        for (int c = 0; c < grid_; ++c) {
          if (col_busy_[static_cast<size_t>(c)]) continue;
          const size_t idx =
              static_cast<size_t>(r) * static_cast<size_t>(grid_) +
              static_cast<size_t>(c);
          if (!remaining_[idx]) continue;
          const int64_t count = lifetime_count_[idx];
          if (best_rb < 0 || count < best_count) {
            best_rb = r;
            best_cb = c;
            best_count = count;
            ties = 1;
          } else if (count == best_count) {
            // Reservoir-sample among equally-processed blocks.
            ++ties;
            if (rng_.NextBelow(static_cast<uint64_t>(ties)) == 0) {
              best_rb = r;
              best_cb = c;
            }
          }
        }
      }
      if (best_rb >= 0) {
        const size_t idx =
            static_cast<size_t>(best_rb) * static_cast<size_t>(grid_) +
            static_cast<size_t>(best_cb);
        remaining_[idx] = false;
        --remaining_count_;
        row_busy_[static_cast<size_t>(best_rb)] = true;
        col_busy_[static_cast<size_t>(best_cb)] = true;
        ++lifetime_count_[idx];
        *rb = best_rb;
        *cb = best_cb;
        return true;
      }
      // All candidate blocks conflict with running ones; wait for a release.
      changed_.wait(lock);
    }
  }

  void Release(int rb, int cb) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      row_busy_[static_cast<size_t>(rb)] = false;
      col_busy_[static_cast<size_t>(cb)] = false;
    }
    changed_.notify_all();
  }

 private:
  const int grid_;
  Rng rng_;
  std::mutex mu_;
  std::condition_variable changed_;
  std::vector<bool> remaining_;
  std::vector<bool> row_busy_;
  std::vector<bool> col_busy_;
  std::vector<int64_t> lifetime_count_;
  int remaining_count_ = 0;
};

template <typename Real>
Result<TrainResult> TrainImpl(const Dataset& ds, const TrainOptions& options,
                              const std::string& name) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options));
  if (options.fpsgd_grid_factor < 1) {
    return Status::InvalidArgument("fpsgd_grid_factor must be >= 1");
  }
  auto schedule = MakeSchedule(options.schedule, options.alpha, options.beta);
  if (!schedule.ok()) return schedule.status();
  auto loss = ResolveLoss(options.loss);
  if (!loss.ok()) return loss.status();

  TrainResult result;
  result.solver_name = name;
  result.precision = options.precision;
  FactorMatrixT<Real> w;
  FactorMatrixT<Real> h;
  InitFactorsT<Real>(ds, options, &w, &h);
  const int p = options.num_workers;
  const int k = options.rank;
  const int grid = options.fpsgd_grid_factor * p + 1;

  const UserPartition row_part = UserPartition::ByRatings(ds.train, grid);
  const UserPartition col_part = UserPartition::ByRows(ds.cols, grid);
  const BlockGrid blocks = BlockGrid::Build(ds.train, row_part, col_part);

  StepCounts counts(ds.train.nnz());
  const UpdateKernelT<Real> kernel(*schedule.value(), loss.value().get(),
                                   options.lambda, k);
  TaskManager manager(grid, options.seed ^ 0xF9F9F9F9ULL);
  EpochLoopT<Real> loop(ds, options, w, h, &result);
  int epoch = 0;
  while (loop.Continue()) {
    manager.StartEpoch();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(p));
    for (int q = 0; q < p; ++q) {
      threads.emplace_back([&, q] {
        Rng rng(options.seed + 4241ULL * static_cast<uint64_t>(q + 1) +
                static_cast<uint64_t>(epoch));
        int rb = 0;
        int cb = 0;
        std::vector<int32_t> order;
        while (manager.Acquire(&rb, &cb)) {
          const auto& block = blocks.Block(rb, cb);
          order.resize(block.size());
          for (size_t i = 0; i < block.size(); ++i) {
            order[i] = static_cast<int32_t>(i);
          }
          rng.Shuffle(&order);
          for (int32_t idx : order) {
            const BlockEntry& e = block[static_cast<size_t>(idx)];
            kernel.Apply(e.value, &counts, e.pos, w.Row(e.row), h.Row(e.col));
          }
          manager.Release(rb, cb);
        }
      });
    }
    for (auto& t : threads) t.join();
    loop.EndEpoch(ds.train.nnz());
    ++epoch;
  }
  StoreTrainedFactors(std::move(w), std::move(h), &result);
  return result;
}

}  // namespace

Result<TrainResult> FpsgdSolver::Train(const Dataset& ds,
                                       const TrainOptions& options) {
  return DispatchPrecision(options.precision, [&](auto zero) {
    return TrainImpl<decltype(zero)>(ds, options, Name());
  });
}

}  // namespace nomad
