#include "baselines/als.h"

#include <memory>
#include <utility>
#include <vector>

#include "linalg/cholesky.h"
#include "solver/epoch_loop.h"
#include "util/thread_pool.h"

namespace nomad {

namespace {

template <typename Real>
Result<TrainResult> TrainImpl(const Dataset& ds, const TrainOptions& options,
                              const std::string& name) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options));
  if (options.loss != "squared" && !options.loss.empty()) {
    return Status::InvalidArgument(name + " supports only the squared loss");
  }

  TrainResult result;
  result.solver_name = name;
  result.precision = options.precision;
  FactorMatrixT<Real> w;
  FactorMatrixT<Real> h;
  InitFactorsT<Real>(ds, options, &w, &h);
  const int k = options.rank;
  const double lambda = options.lambda;
  const SparseMatrix& train = ds.train;

  ThreadPool pool(options.num_workers);
  // One normal-equation accumulator per pool shard to avoid re-allocation.
  // The accumulators and the Cholesky solve stay double even for float
  // factors (see NormalEquations); only the stored rows are Real.
  std::vector<std::unique_ptr<NormalEquations>> scratch;
  for (int q = 0; q < options.num_workers; ++q) {
    scratch.push_back(std::make_unique<NormalEquations>(k));
  }

  EpochLoopT<Real> loop(ds, options, w, h, &result, &pool);
  while (loop.Continue()) {
    // Update all w_i with H fixed.
    ParallelForShards(&pool, 0, train.rows(),
                      [&](int shard, int64_t begin, int64_t end) {
                        NormalEquations& ne = *scratch[static_cast<size_t>(shard)];
                        for (int64_t i = begin; i < end; ++i) {
                          const int32_t row = static_cast<int32_t>(i);
                          const int32_t n = train.RowNnz(row);
                          if (n == 0) continue;
                          const int32_t* cols = train.RowCols(row);
                          const float* vals = train.RowVals(row);
                          ne.Reset();
                          for (int32_t t = 0; t < n; ++t) {
                            ne.Add(h.Row(cols[t]), vals[t]);
                          }
                          ne.Solve(lambda * n, w.Row(row));
                        }
                      });
    // Update all h_j with W fixed.
    ParallelForShards(&pool, 0, train.cols(),
                      [&](int shard, int64_t begin, int64_t end) {
                        NormalEquations& ne = *scratch[static_cast<size_t>(shard)];
                        for (int64_t j = begin; j < end; ++j) {
                          const int32_t col = static_cast<int32_t>(j);
                          const int32_t n = train.ColNnz(col);
                          if (n == 0) continue;
                          const int32_t* rows = train.ColRows(col);
                          const float* vals = train.ColVals(col);
                          ne.Reset();
                          for (int32_t t = 0; t < n; ++t) {
                            ne.Add(w.Row(rows[t]), vals[t]);
                          }
                          ne.Solve(lambda * n, h.Row(col));
                        }
                      });
    // Work accounting: one least-squares "update" per row and per column.
    loop.EndEpoch(train.rows() + train.cols());
  }
  StoreTrainedFactors(std::move(w), std::move(h), &result);
  return result;
}

}  // namespace

Result<TrainResult> AlsSolver::Train(const Dataset& ds,
                                     const TrainOptions& options) {
  return DispatchPrecision(options.precision, [&](auto zero) {
    return TrainImpl<decltype(zero)>(ds, options, Name());
  });
}

}  // namespace nomad
